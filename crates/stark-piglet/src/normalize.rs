//! Script normalization for plan caching.
//!
//! A query service re-planning every request wastes work when thousands
//! of clients send the same script shapes with different constants (the
//! SPARQL-on-Spark observation: reuse plans across statements instead of
//! re-planning per request). This module turns a parsed script into a
//! canonical *template* plus the extracted constants:
//!
//! * **aliases defined by the script** are renamed to positional
//!   `_r0, _r1, ...` in definition order — `f = FILTER ev BY ...` and
//!   `g = FILTER ev BY ...` normalize identically. References to names
//!   the script does *not* define (registered datasets like `ev`) are
//!   semantic and stay verbatim;
//! * **expression literals** (ints, doubles, strings inside `FILTER`,
//!   `FOREACH`, `SPATIAL_FILTER`/`KNN` query expressions) are
//!   parameterized out into [`Expr::Param`] placeholders and returned as
//!   [`ParamValue`]s;
//! * **structural constants** stay in the key: `GRID(4)` vs `GRID(8)`,
//!   `K 5` vs `K 10`, `LIMIT 3`, DBSCAN/COLOCATE parameters, `LOAD`
//!   paths and schemas all produce *different* plans, so they must
//!   produce different cache entries.
//!
//! Whitespace, comments and keyword case never reach the AST, so they
//! normalize away for free. The cache key is the canonical debug
//! rendering of the template — structurally different scripts cannot
//! collide because the rendering is injective on the AST.

use crate::ast::{Expr, Projection, Statement};
use crate::parser::{parse_script, ParseError};
use crate::value::Value;
use std::collections::HashMap;

/// A literal extracted from a script during normalization, re-bound at
/// execution time like a prepared-statement parameter.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamValue {
    Int(i64),
    Double(f64),
    Str(String),
    Bool(bool),
}

impl ParamValue {
    fn to_expr(&self) -> Expr {
        match self {
            ParamValue::Int(v) => Expr::IntLit(*v),
            ParamValue::Double(v) => Expr::DoubleLit(*v),
            ParamValue::Str(s) => Expr::StrLit(s.clone()),
            ParamValue::Bool(b) => Expr::BoolLit(*b),
        }
    }

    /// The runtime value this parameter binds to.
    pub fn to_value(&self) -> Value {
        match self {
            ParamValue::Int(v) => Value::Int(*v),
            ParamValue::Double(v) => Value::Double(*v),
            ParamValue::Str(s) => Value::Str(s.clone()),
            ParamValue::Bool(b) => Value::Bool(*b),
        }
    }
}

/// A normalized script: cache key, parameterized template, and the
/// constants extracted from this particular request.
#[derive(Debug, Clone, PartialEq)]
pub struct NormalizedScript {
    /// Canonical rendering of the template — the plan-cache key.
    pub key: String,
    /// Statements with canonical aliases and [`Expr::Param`]
    /// placeholders where this request's literals were.
    pub template: Vec<Statement>,
    /// The extracted literals, in placeholder order.
    pub params: Vec<ParamValue>,
}

/// Parses and normalizes a script (the parse + normalize stages of the
/// service pipeline).
pub fn normalize_script(script: &str) -> Result<NormalizedScript, ParseError> {
    let statements = parse_script(script)?;
    Ok(normalize_statements(statements))
}

/// Normalizes pre-parsed statements.
pub fn normalize_statements(statements: Vec<Statement>) -> NormalizedScript {
    let mut n = Normalizer::default();
    let template: Vec<Statement> = statements.into_iter().map(|s| n.statement(s)).collect();
    let key = format!("{template:?}");
    NormalizedScript { key, template, params: n.params }
}

/// Re-binds extracted literals into a template, yielding executable
/// statements. Fails when the parameter list does not match the
/// template's placeholders (a cache-corruption guard, not a user error).
pub fn instantiate(
    template: &[Statement],
    params: &[ParamValue],
) -> Result<Vec<Statement>, String> {
    let mut out = Vec::with_capacity(template.len());
    for stmt in template {
        out.push(map_statement_exprs(stmt.clone(), &mut |e| bind_expr(e, params))?);
    }
    Ok(out)
}

fn bind_expr(expr: Expr, params: &[ParamValue]) -> Result<Expr, String> {
    map_expr(expr, &mut |e| match e {
        Expr::Param(i) => match params.get(i) {
            Some(p) => Ok(p.to_expr()),
            None => Err(format!(
                "template references parameter ?{i} but only {} were extracted",
                params.len()
            )),
        },
        other => Ok(other),
    })
}

#[derive(Default)]
struct Normalizer {
    /// Current canonical name of every alias the script has defined.
    aliases: HashMap<String, String>,
    /// Count of aliases defined so far (`_rN` source).
    defined: usize,
    params: Vec<ParamValue>,
}

impl Normalizer {
    /// Canonical form of a relation *reference*: script-defined aliases
    /// map to their positional name; external dataset names stay.
    fn reference(&self, name: String) -> String {
        self.aliases.get(&name).cloned().unwrap_or(name)
    }

    /// Canonical name for a fresh alias *definition* (redefinitions get
    /// a fresh positional name, shadowing the earlier mapping).
    fn define(&mut self, name: String) -> String {
        let canonical = format!("_r{}", self.defined);
        self.defined += 1;
        self.aliases.insert(name, canonical.clone());
        canonical
    }

    /// Extracts literals from an expression into the parameter list.
    /// Unary minus on a numeric literal folds into the extracted value
    /// first, so `id < -5` and `id < 5` share a template (differing
    /// only in the bound parameter).
    fn expr(&mut self, expr: Expr) -> Expr {
        // infallible: the mappers below never error
        let folded = map_expr(expr, &mut |e| {
            Ok(match e {
                Expr::Neg(inner) => match *inner {
                    Expr::IntLit(v) => Expr::IntLit(-v),
                    Expr::DoubleLit(v) => Expr::DoubleLit(-v),
                    other => Expr::Neg(Box::new(other)),
                },
                other => other,
            })
        })
        .expect("negation folding is infallible");
        map_expr(folded, &mut |e| {
            Ok(match e {
                Expr::IntLit(v) => self.param(ParamValue::Int(v)),
                Expr::DoubleLit(v) => self.param(ParamValue::Double(v)),
                Expr::StrLit(s) => self.param(ParamValue::Str(s)),
                Expr::BoolLit(b) => self.param(ParamValue::Bool(b)),
                other => other,
            })
        })
        .expect("literal extraction is infallible")
    }

    fn param(&mut self, value: ParamValue) -> Expr {
        self.params.push(value);
        Expr::Param(self.params.len() - 1)
    }

    /// Normalizes one statement: inputs are rewritten with the *current*
    /// alias map, then the defined alias (if any) gets its canonical
    /// name — so `x = FILTER x BY ...` reads the old `x` and defines a
    /// new one, exactly like execution does.
    fn statement(&mut self, stmt: Statement) -> Statement {
        match stmt {
            Statement::Load { alias, path, schema } => {
                let alias = self.define(alias);
                Statement::Load { alias, path, schema }
            }
            Statement::Filter { alias, input, expr } => {
                let input = self.reference(input);
                let expr = self.expr(expr);
                let alias = self.define(alias);
                Statement::Filter { alias, input, expr }
            }
            Statement::Foreach { alias, input, projections } => {
                let input = self.reference(input);
                let projections = projections
                    .into_iter()
                    .map(|p| Projection { expr: self.expr(p.expr), alias: p.alias })
                    .collect();
                let alias = self.define(alias);
                Statement::Foreach { alias, input, projections }
            }
            Statement::SpatialFilter { alias, input, pred, field, query } => {
                let input = self.reference(input);
                let query = self.expr(query);
                let alias = self.define(alias);
                Statement::SpatialFilter { alias, input, pred, field, query }
            }
            Statement::Partition { alias, input, spec, field } => {
                let input = self.reference(input);
                let alias = self.define(alias);
                Statement::Partition { alias, input, spec, field }
            }
            Statement::Index { alias, input, order } => {
                let input = self.reference(input);
                let alias = self.define(alias);
                Statement::Index { alias, input, order }
            }
            Statement::SpatialJoin { alias, left, left_field, right, right_field, pred } => {
                let left = self.reference(left);
                let right = self.reference(right);
                let alias = self.define(alias);
                Statement::SpatialJoin { alias, left, left_field, right, right_field, pred }
            }
            Statement::Knn { alias, input, field, query, k } => {
                let input = self.reference(input);
                let query = self.expr(query);
                let alias = self.define(alias);
                Statement::Knn { alias, input, field, query, k }
            }
            Statement::Cluster { alias, input, eps, min_pts, field } => {
                let input = self.reference(input);
                let alias = self.define(alias);
                Statement::Cluster { alias, input, eps, min_pts, field }
            }
            Statement::GroupCount { alias, input, field } => {
                let input = self.reference(input);
                let alias = self.define(alias);
                Statement::GroupCount { alias, input, field }
            }
            Statement::Colocate {
                alias,
                input,
                category_field,
                geo_field,
                distance,
                min_participation,
            } => {
                let input = self.reference(input);
                let alias = self.define(alias);
                Statement::Colocate {
                    alias,
                    input,
                    category_field,
                    geo_field,
                    distance,
                    min_participation,
                }
            }
            Statement::Limit { alias, input, n } => {
                let input = self.reference(input);
                let alias = self.define(alias);
                Statement::Limit { alias, input, n }
            }
            Statement::OrderBy { alias, input, field, desc } => {
                let input = self.reference(input);
                let alias = self.define(alias);
                Statement::OrderBy { alias, input, field, desc }
            }
            Statement::Dump { input } => Statement::Dump { input: self.reference(input) },
            Statement::Describe { input } => Statement::Describe { input: self.reference(input) },
            Statement::Explain { input } => Statement::Explain { input: self.reference(input) },
            Statement::Store { input, path } => {
                Statement::Store { input: self.reference(input), path }
            }
        }
    }
}

/// Applies `f` bottom-up over every node of an expression tree.
fn map_expr(expr: Expr, f: &mut impl FnMut(Expr) -> Result<Expr, String>) -> Result<Expr, String> {
    let expr = match expr {
        Expr::Not(e) => Expr::Not(Box::new(map_expr(*e, f)?)),
        Expr::Neg(e) => Expr::Neg(Box::new(map_expr(*e, f)?)),
        Expr::Bin(op, a, b) => {
            Expr::Bin(op, Box::new(map_expr(*a, f)?), Box::new(map_expr(*b, f)?))
        }
        Expr::Call(name, args) => {
            let args = args.into_iter().map(|a| map_expr(a, f)).collect::<Result<_, _>>()?;
            Expr::Call(name, args)
        }
        leaf => leaf,
    };
    f(expr)
}

/// Applies `f` to every expression embedded in a statement.
fn map_statement_exprs(
    stmt: Statement,
    f: &mut impl FnMut(Expr) -> Result<Expr, String>,
) -> Result<Statement, String> {
    Ok(match stmt {
        Statement::Filter { alias, input, expr } => {
            Statement::Filter { alias, input, expr: f(expr)? }
        }
        Statement::Foreach { alias, input, projections } => {
            let projections = projections
                .into_iter()
                .map(|p| Ok(Projection { expr: f(p.expr)?, alias: p.alias }))
                .collect::<Result<_, String>>()?;
            Statement::Foreach { alias, input, projections }
        }
        Statement::SpatialFilter { alias, input, pred, field, query } => {
            Statement::SpatialFilter { alias, input, pred, field, query: f(query)? }
        }
        Statement::Knn { alias, input, field, query, k } => {
            Statement::Knn { alias, input, field, query: f(query)?, k }
        }
        other => other,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(script: &str) -> String {
        normalize_script(script).unwrap().key
    }

    #[test]
    fn negative_literals_share_the_positive_template() {
        let a = normalize_script("f = FILTER ev BY id < -5;").unwrap();
        let b = normalize_script("f = FILTER ev BY id < 5;").unwrap();
        assert_eq!(a.key, b.key, "unary minus folds into the extracted value");
        assert_eq!(a.params, vec![ParamValue::Int(-5)]);
        assert_eq!(b.params, vec![ParamValue::Int(5)]);
    }

    #[test]
    fn literals_parameterize_out() {
        let a = normalize_script("f = FILTER ev BY id < 10 AND cat == 'x';\nDUMP f;").unwrap();
        let b = normalize_script("f = FILTER ev BY id < 99 AND cat == 'y';\nDUMP f;").unwrap();
        assert_eq!(a.key, b.key, "literal values must not affect the key");
        assert_eq!(a.params, vec![ParamValue::Int(10), ParamValue::Str("x".into())]);
        assert_eq!(b.params, vec![ParamValue::Int(99), ParamValue::Str("y".into())]);
    }

    #[test]
    fn aliases_and_whitespace_normalize_away() {
        assert_eq!(
            key("f = FILTER ev BY id < 10;\nDUMP f;"),
            key("  result   =   filter ev BY id < 10 ; -- comment\n DUMP result ;"),
        );
    }

    #[test]
    fn external_dataset_names_are_semantic() {
        assert_ne!(
            key("f = FILTER ev BY id < 10;"),
            key("f = FILTER other BY id < 10;"),
            "different registered datasets must not share a plan"
        );
    }

    #[test]
    fn structural_constants_stay_in_the_key() {
        assert_ne!(
            key("p = PARTITION ev BY GRID(4) ON obj;"),
            key("p = PARTITION ev BY GRID(8) ON obj;")
        );
        assert_ne!(key("l = LIMIT ev 3;"), key("l = LIMIT ev 5;"));
        assert_ne!(
            key("k = KNN ev BY obj QUERY ST('POINT(0 0)') K 5;"),
            key("k = KNN ev BY obj QUERY ST('POINT(0 0)') K 9;"),
            "K is structural; the query point is parameterized"
        );
    }

    #[test]
    fn knn_query_point_is_parameterized() {
        assert_eq!(
            key("k = KNN ev BY obj QUERY ST('POINT(0 0)') K 5;"),
            key("k = KNN ev BY obj QUERY ST('POINT(7 3)') K 5;"),
        );
    }

    #[test]
    fn redefinition_shadows_like_execution() {
        let a = key("x = FILTER ev BY id < 1;\nx = FILTER x BY id < 2;\nDUMP x;");
        let b = key("y = FILTER ev BY id < 9;\nz = FILTER y BY id < 8;\nDUMP z;");
        assert_eq!(a, b, "self-redefinition reads the old alias, defines a new one");
    }

    #[test]
    fn instantiate_round_trips() {
        let script = "f = FILTER ev BY id < 42 AND cat == 'concert';\nDUMP f;";
        let n = normalize_script(script).unwrap();
        let bound = instantiate(&n.template, &n.params).unwrap();
        // the bound statements equal the parse of the canonical script
        let direct =
            parse_script("_r0 = FILTER ev BY id < 42 AND cat == 'concert';\nDUMP _r0;").unwrap();
        assert_eq!(bound, direct);
    }

    #[test]
    fn instantiate_rejects_mismatched_params() {
        let n = normalize_script("f = FILTER ev BY id < 42;").unwrap();
        assert!(instantiate(&n.template, &[]).is_err());
    }
}
