//! Tokenizer for the Piglet dialect.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    Ident(String),
    IntLit(i64),
    DoubleLit(f64),
    StrLit(String),
    // punctuation
    LParen,
    RParen,
    Comma,
    Semicolon,
    Colon,
    Eq,  // ==
    Neq, // !=
    Lt,
    Lte,
    Gt,
    Gte,
    Assign, // =
    Plus,
    Minus,
    Star,
    Slash,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::IntLit(v) => write!(f, "{v}"),
            Token::DoubleLit(v) => write!(f, "{v}"),
            Token::StrLit(s) => write!(f, "'{s}'"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Comma => write!(f, ","),
            Token::Semicolon => write!(f, ";"),
            Token::Colon => write!(f, ":"),
            Token::Eq => write!(f, "=="),
            Token::Neq => write!(f, "!="),
            Token::Lt => write!(f, "<"),
            Token::Lte => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Gte => write!(f, ">="),
            Token::Assign => write!(f, "="),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Slash => write!(f, "/"),
        }
    }
}

/// A lexer error with position information.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    pub message: String,
    pub position: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes `input`. Comments run from `--` to end of line.
pub fn tokenize(input: &str) -> Result<Vec<Token>, LexError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            b')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            b',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            b';' => {
                tokens.push(Token::Semicolon);
                i += 1;
            }
            b':' => {
                tokens.push(Token::Colon);
                i += 1;
            }
            b'+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            b'-' => {
                tokens.push(Token::Minus);
                i += 1;
            }
            b'*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            b'/' => {
                tokens.push(Token::Slash);
                i += 1;
            }
            b'=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Eq);
                    i += 2;
                } else {
                    tokens.push(Token::Assign);
                    i += 1;
                }
            }
            b'!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Neq);
                    i += 2;
                } else {
                    return Err(LexError { message: "expected '!='".into(), position: i });
                }
            }
            b'<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Lte);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Gte);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            b'\'' | b'"' => {
                let quote = b;
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != quote {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(LexError { message: "unterminated string".into(), position: i });
                }
                tokens.push(Token::StrLit(input[start..j].to_string()));
                i = j + 1;
            }
            b'0'..=b'9' | b'.' => {
                let start = i;
                let mut has_dot = false;
                let mut has_exp = false;
                while i < bytes.len() {
                    match bytes[i] {
                        b'0'..=b'9' => i += 1,
                        b'.' if !has_dot && !has_exp => {
                            has_dot = true;
                            i += 1;
                        }
                        b'e' | b'E' if !has_exp && i > start => {
                            has_exp = true;
                            i += 1;
                            if i < bytes.len() && (bytes[i] == b'+' || bytes[i] == b'-') {
                                i += 1;
                            }
                        }
                        _ => break,
                    }
                }
                let text = &input[start..i];
                if has_dot || has_exp {
                    let v = text.parse::<f64>().map_err(|e| LexError {
                        message: format!("bad number {text:?}: {e}"),
                        position: start,
                    })?;
                    tokens.push(Token::DoubleLit(v));
                } else {
                    let v = text.parse::<i64>().map_err(|e| LexError {
                        message: format!("bad number {text:?}: {e}"),
                        position: start,
                    })?;
                    tokens.push(Token::IntLit(v));
                }
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                tokens.push(Token::Ident(input[start..i].to_string()));
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character {:?}", other as char),
                    position: i,
                });
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_statement() {
        let toks = tokenize("a = LOAD 'f.csv';").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("a".into()),
                Token::Assign,
                Token::Ident("LOAD".into()),
                Token::StrLit("f.csv".into()),
                Token::Semicolon,
            ]
        );
    }

    #[test]
    fn numbers_and_operators() {
        let toks = tokenize("x >= 1.5 AND y != -2e3").unwrap();
        assert!(toks.contains(&Token::Gte));
        assert!(toks.contains(&Token::DoubleLit(1.5)));
        assert!(toks.contains(&Token::Neq));
        assert!(toks.contains(&Token::Minus));
        assert!(toks.contains(&Token::DoubleLit(2000.0)));
    }

    #[test]
    fn comments_skipped() {
        let toks = tokenize("a -- comment ; with stuff\n= 1;").unwrap();
        assert_eq!(toks.len(), 4);
    }

    #[test]
    fn double_quoted_strings() {
        let toks = tokenize(r#"ST("POLYGON((0 0, 1 1, 1 0))")"#).unwrap();
        assert_eq!(toks.len(), 4);
        assert!(matches!(&toks[2], Token::StrLit(s) if s.contains("POLYGON")));
    }

    #[test]
    fn comparison_tokens() {
        assert_eq!(tokenize("== = < <= > >=").unwrap().len(), 6);
    }

    #[test]
    fn errors() {
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("a ! b").is_err());
        assert!(tokenize("€").is_err());
        let err = tokenize("  'x").unwrap_err();
        assert_eq!(err.position, 2);
    }
}
