//! Tokenizer for the Piglet dialect.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    Ident(String),
    IntLit(i64),
    DoubleLit(f64),
    StrLit(String),
    // punctuation
    LParen,
    RParen,
    Comma,
    Semicolon,
    Colon,
    Eq,  // ==
    Neq, // !=
    Lt,
    Lte,
    Gt,
    Gte,
    Assign, // =
    Plus,
    Minus,
    Star,
    Slash,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::IntLit(v) => write!(f, "{v}"),
            Token::DoubleLit(v) => write!(f, "{v}"),
            Token::StrLit(s) => write!(f, "'{s}'"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Comma => write!(f, ","),
            Token::Semicolon => write!(f, ";"),
            Token::Colon => write!(f, ":"),
            Token::Eq => write!(f, "=="),
            Token::Neq => write!(f, "!="),
            Token::Lt => write!(f, "<"),
            Token::Lte => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Gte => write!(f, ">="),
            Token::Assign => write!(f, "="),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Slash => write!(f, "/"),
        }
    }
}

/// 1-based line/column of a token or error in the source script.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pos {
    pub line: u32,
    pub column: u32,
}

impl Pos {
    /// Position of the start of input.
    pub fn start() -> Pos {
        Pos { line: 1, column: 1 }
    }
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, column {}", self.line, self.column)
    }
}

/// A lexer error with position information.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    pub message: String,
    /// Byte offset into the input.
    pub position: usize,
    /// 1-based line/column of `position`.
    pub pos: Pos,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes `input`. Comments run from `--` to end of line.
pub fn tokenize(input: &str) -> Result<Vec<Token>, LexError> {
    Ok(tokenize_spanned(input)?.into_iter().map(|(t, _)| t).collect())
}

/// Tokenizes `input`, pairing every token with its 1-based line/column.
pub fn tokenize_spanned(input: &str) -> Result<Vec<(Token, Pos)>, LexError> {
    let spanned = tokenize_offsets(input).map_err(|(message, position)| LexError {
        message,
        position,
        pos: pos_of_offsets(input, &[position])[0],
    })?;
    let offsets: Vec<usize> = spanned.iter().map(|&(_, o)| o).collect();
    let positions = pos_of_offsets(input, &offsets);
    Ok(spanned.into_iter().zip(positions).map(|((t, _), p)| (t, p)).collect())
}

/// Converts sorted byte offsets to line/column in one pass over `input`.
fn pos_of_offsets(input: &str, offsets: &[usize]) -> Vec<Pos> {
    let mut out = Vec::with_capacity(offsets.len());
    let mut pos = Pos::start();
    let mut next = 0usize; // byte cursor matching `pos`
    for &target in offsets {
        for b in input.as_bytes()[next..target.min(input.len())].iter() {
            if *b == b'\n' {
                pos.line += 1;
                pos.column = 1;
            } else {
                pos.column += 1;
            }
        }
        next = target.min(input.len());
        out.push(pos);
    }
    out
}

/// The scanning loop: tokens paired with their start byte offset.
/// Errors are `(message, offset)` pairs resolved to [`Pos`] by the caller.
#[allow(clippy::type_complexity)]
fn tokenize_offsets(input: &str) -> Result<Vec<(Token, usize)>, (String, usize)> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        let start = i;
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'(' => {
                tokens.push((Token::LParen, start));
                i += 1;
            }
            b')' => {
                tokens.push((Token::RParen, start));
                i += 1;
            }
            b',' => {
                tokens.push((Token::Comma, start));
                i += 1;
            }
            b';' => {
                tokens.push((Token::Semicolon, start));
                i += 1;
            }
            b':' => {
                tokens.push((Token::Colon, start));
                i += 1;
            }
            b'+' => {
                tokens.push((Token::Plus, start));
                i += 1;
            }
            b'-' => {
                tokens.push((Token::Minus, start));
                i += 1;
            }
            b'*' => {
                tokens.push((Token::Star, start));
                i += 1;
            }
            b'/' => {
                tokens.push((Token::Slash, start));
                i += 1;
            }
            b'=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push((Token::Eq, start));
                    i += 2;
                } else {
                    tokens.push((Token::Assign, start));
                    i += 1;
                }
            }
            b'!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push((Token::Neq, start));
                    i += 2;
                } else {
                    return Err(("expected '!='".into(), i));
                }
            }
            b'<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push((Token::Lte, start));
                    i += 2;
                } else {
                    tokens.push((Token::Lt, start));
                    i += 1;
                }
            }
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push((Token::Gte, start));
                    i += 2;
                } else {
                    tokens.push((Token::Gt, start));
                    i += 1;
                }
            }
            b'\'' | b'"' => {
                let quote = b;
                let lit_start = i + 1;
                let mut j = lit_start;
                while j < bytes.len() && bytes[j] != quote {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(("unterminated string".into(), i));
                }
                tokens.push((Token::StrLit(input[lit_start..j].to_string()), start));
                i = j + 1;
            }
            b'0'..=b'9' | b'.' => {
                let mut has_dot = false;
                let mut has_exp = false;
                while i < bytes.len() {
                    match bytes[i] {
                        b'0'..=b'9' => i += 1,
                        b'.' if !has_dot && !has_exp => {
                            has_dot = true;
                            i += 1;
                        }
                        b'e' | b'E' if !has_exp && i > start => {
                            has_exp = true;
                            i += 1;
                            if i < bytes.len() && (bytes[i] == b'+' || bytes[i] == b'-') {
                                i += 1;
                            }
                        }
                        _ => break,
                    }
                }
                let text = &input[start..i];
                if has_dot || has_exp {
                    let v = text
                        .parse::<f64>()
                        .map_err(|e| (format!("bad number {text:?}: {e}"), start))?;
                    tokens.push((Token::DoubleLit(v), start));
                } else {
                    let v = text
                        .parse::<i64>()
                        .map_err(|e| (format!("bad number {text:?}: {e}"), start))?;
                    tokens.push((Token::IntLit(v), start));
                }
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                tokens.push((Token::Ident(input[start..i].to_string()), start));
            }
            other => {
                return Err((format!("unexpected character {:?}", other as char), i));
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_statement() {
        let toks = tokenize("a = LOAD 'f.csv';").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("a".into()),
                Token::Assign,
                Token::Ident("LOAD".into()),
                Token::StrLit("f.csv".into()),
                Token::Semicolon,
            ]
        );
    }

    #[test]
    fn numbers_and_operators() {
        let toks = tokenize("x >= 1.5 AND y != -2e3").unwrap();
        assert!(toks.contains(&Token::Gte));
        assert!(toks.contains(&Token::DoubleLit(1.5)));
        assert!(toks.contains(&Token::Neq));
        assert!(toks.contains(&Token::Minus));
        assert!(toks.contains(&Token::DoubleLit(2000.0)));
    }

    #[test]
    fn comments_skipped() {
        let toks = tokenize("a -- comment ; with stuff\n= 1;").unwrap();
        assert_eq!(toks.len(), 4);
    }

    #[test]
    fn double_quoted_strings() {
        let toks = tokenize(r#"ST("POLYGON((0 0, 1 1, 1 0))")"#).unwrap();
        assert_eq!(toks.len(), 4);
        assert!(matches!(&toks[2], Token::StrLit(s) if s.contains("POLYGON")));
    }

    #[test]
    fn comparison_tokens() {
        assert_eq!(tokenize("== = < <= > >=").unwrap().len(), 6);
    }

    #[test]
    fn errors() {
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("a ! b").is_err());
        assert!(tokenize("€").is_err());
        let err = tokenize("  'x").unwrap_err();
        assert_eq!(err.position, 2);
        assert_eq!(err.pos, Pos { line: 1, column: 3 });
    }

    #[test]
    fn spans_track_lines_and_columns() {
        let toks = tokenize_spanned("a = 1;\n  b = 2;").unwrap();
        assert_eq!(toks[0].1, Pos { line: 1, column: 1 });
        assert_eq!(toks[1].1, Pos { line: 1, column: 3 });
        assert_eq!(toks[4].1, Pos { line: 2, column: 3 }, "indented token on line 2");
        let (tok, pos) = &toks[5];
        assert_eq!(tok, &Token::Assign);
        assert_eq!(*pos, Pos { line: 2, column: 5 });
    }

    #[test]
    fn multiline_error_position() {
        let err = tokenize("a = 1;\nb = !;").unwrap_err();
        assert_eq!(err.pos, Pos { line: 2, column: 5 });
    }
}
