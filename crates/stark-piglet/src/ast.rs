//! Abstract syntax of the Piglet dialect.
//!
//! Piglet \[4\] extends Pig Latin with spatio-temporal data types and
//! operators; this AST covers the classic relational statements plus the
//! STARK extensions (`SPATIAL_FILTER`, `SPATIAL_JOIN`, `PARTITION`,
//! `INDEX`, `KNN`, `CLUSTER BY DBSCAN`).

use stark_geo::DistanceFn;

/// A scalar expression over tuple fields.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Field reference by name.
    Field(String),
    IntLit(i64),
    DoubleLit(f64),
    StrLit(String),
    BoolLit(bool),
    /// Placeholder for an extracted literal in a normalized plan
    /// template (see [`crate::normalize`]); never produced by the
    /// parser, and must be re-bound via
    /// [`crate::normalize::instantiate`] before execution.
    Param(usize),
    /// Unary operators.
    Not(Box<Expr>),
    Neg(Box<Expr>),
    /// Binary operators.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Built-in function call.
    Call(String, Vec<Expr>),
}

/// Binary operators in precedence groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Or,
    And,
    Eq,
    Neq,
    Lt,
    Lte,
    Gt,
    Gte,
    Add,
    Sub,
    Mul,
    Div,
}

/// A spatio-temporal predicate in `SPATIAL_FILTER` / `SPATIAL_JOIN`.
#[derive(Debug, Clone, PartialEq)]
pub enum SpatialPredicate {
    Intersects,
    Contains,
    ContainedBy,
    WithinDistance { max_dist: f64, dist_fn: DistanceFn },
}

/// A partitioner spec in `PARTITION ... USING`.
#[derive(Debug, Clone, PartialEq)]
pub enum PartitionerSpec {
    /// `GRID(dims)`
    Grid { dims: usize },
    /// `BSP(max_cost, side_length)`
    Bsp { max_cost: usize, side_length: f64 },
}

/// One projected output column of `FOREACH ... GENERATE`.
#[derive(Debug, Clone, PartialEq)]
pub struct Projection {
    pub expr: Expr,
    /// `AS name`; defaults to a positional name.
    pub alias: Option<String>,
}

/// A Piglet statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `alias = LOAD 'path' AS (name:type, ...);`
    Load { alias: String, path: String, schema: Vec<(String, String)> },
    /// `alias = FILTER input BY expr;`
    Filter { alias: String, input: String, expr: Expr },
    /// `alias = FOREACH input GENERATE proj, ...;`
    Foreach { alias: String, input: String, projections: Vec<Projection> },
    /// `alias = SPATIAL_FILTER input BY PRED(field, expr);`
    SpatialFilter {
        alias: String,
        input: String,
        pred: SpatialPredicate,
        field: String,
        query: Expr,
    },
    /// `alias = PARTITION input BY GRID(4) ON field;`
    Partition { alias: String, input: String, spec: PartitionerSpec, field: String },
    /// `alias = INDEX input ORDER n;` — live-index marker (order recorded)
    Index { alias: String, input: String, order: usize },
    /// `alias = SPATIAL_JOIN left BY lfield, right BY rfield USING PRED;`
    SpatialJoin {
        alias: String,
        left: String,
        left_field: String,
        right: String,
        right_field: String,
        pred: SpatialPredicate,
    },
    /// `alias = KNN input BY field QUERY expr K n;`
    Knn { alias: String, input: String, field: String, query: Expr, k: usize },
    /// `alias = CLUSTER input BY DBSCAN(eps, minpts) ON field;`
    Cluster { alias: String, input: String, eps: f64, min_pts: usize, field: String },
    /// `alias = GROUP input BY field;` — grouped record counts
    /// (simplified Pig `GROUP` + `COUNT` in one step).
    GroupCount { alias: String, input: String, field: String },
    /// `alias = COLOCATE input BY catfield ON geofield DISTANCE d MINPI p;`
    Colocate {
        alias: String,
        input: String,
        category_field: String,
        geo_field: String,
        distance: f64,
        min_participation: f64,
    },
    /// `alias = LIMIT input n;`
    Limit { alias: String, input: String, n: usize },
    /// `alias = ORDER input BY field [DESC];`
    OrderBy { alias: String, input: String, field: String, desc: bool },
    /// `DUMP alias;`
    Dump { input: String },
    /// `DESCRIBE alias;`
    Describe { input: String },
    /// `EXPLAIN alias;` — physical form + engine lineage.
    Explain { input: String },
    /// `STORE alias INTO 'path';`
    Store { input: String, path: String },
}

impl Statement {
    /// The alias this statement defines, if any.
    pub fn defines(&self) -> Option<&str> {
        match self {
            Statement::Load { alias, .. }
            | Statement::Filter { alias, .. }
            | Statement::Foreach { alias, .. }
            | Statement::SpatialFilter { alias, .. }
            | Statement::Partition { alias, .. }
            | Statement::Index { alias, .. }
            | Statement::SpatialJoin { alias, .. }
            | Statement::Knn { alias, .. }
            | Statement::Cluster { alias, .. }
            | Statement::GroupCount { alias, .. }
            | Statement::Colocate { alias, .. }
            | Statement::Limit { alias, .. }
            | Statement::OrderBy { alias, .. } => Some(alias),
            Statement::Dump { .. }
            | Statement::Describe { .. }
            | Statement::Explain { .. }
            | Statement::Store { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defines_reports_alias() {
        let s = Statement::Limit { alias: "x".into(), input: "y".into(), n: 3 };
        assert_eq!(s.defines(), Some("x"));
        let d = Statement::Dump { input: "x".into() };
        assert_eq!(d.defines(), None);
    }
}
