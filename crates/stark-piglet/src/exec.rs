//! Executes parsed Piglet scripts against the engine and the STARK
//! operator layer.

use crate::ast::{BinOp, Expr, PartitionerSpec, Projection, SpatialPredicate, Statement};
use crate::parser::{parse_script, ParseError};
use crate::value::{format_tuple, Tuple, Value};
use stark::{
    cluster::{colocation_patterns, dbscan, ColocationParams, DbscanParams},
    BspPartitioner, GridPartitioner, IndexedSpatialRdd, JoinConfig, STObject, STPredicate,
    SpatialPartitioner, SpatialRdd, SpatialRddExt, Temporal,
};
use stark_engine::{Context, Rdd};
use stark_geo::{DistanceFn, Geometry};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// An execution error.
#[derive(Debug)]
pub enum PigletError {
    Parse(ParseError),
    Exec(String),
}

impl fmt::Display for PigletError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PigletError::Parse(e) => write!(f, "{e}"),
            PigletError::Exec(msg) => write!(f, "execution error: {msg}"),
        }
    }
}

impl std::error::Error for PigletError {}

impl From<ParseError> for PigletError {
    fn from(e: ParseError) -> Self {
        PigletError::Parse(e)
    }
}

fn exec_err(msg: impl Into<String>) -> PigletError {
    PigletError::Exec(msg.into())
}

/// Observable output of a script run. Serializable so the query service
/// can put it on the wire.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Output {
    /// `DUMP alias;` — the rendered tuples.
    Dump { alias: String, lines: Vec<String> },
    /// `DESCRIBE alias;` — the schema rendering.
    Describe { alias: String, schema: String },
    /// `STORE alias INTO 'path';`
    Stored { alias: String, path: String, records: usize },
    /// `EXPLAIN alias;` — physical form and engine lineage.
    Explained { alias: String, plan: String },
}

/// The physical form of a relation.
enum RelData {
    Plain(Rdd<Tuple>),
    /// Keyed by the STObject in column `field`; carries partitioning.
    Spatial {
        srdd: SpatialRdd<Tuple>,
        field: usize,
    },
    /// Live-indexed form.
    Indexed {
        idx: IndexedSpatialRdd<Tuple>,
        field: usize,
    },
}

/// A named relation: schema + data.
struct Relation {
    schema: Arc<Vec<String>>,
    data: RelData,
}

impl Relation {
    /// A plain tuple view regardless of physical form.
    fn tuples(&self) -> Rdd<Tuple> {
        match &self.data {
            RelData::Plain(rdd) => rdd.clone(),
            RelData::Spatial { srdd, .. } => srdd.rdd().map(|(_, t)| t),
            RelData::Indexed { idx, .. } => idx.trees().map_partitions(|trees| {
                trees
                    .iter()
                    .flat_map(|t| t.entries().into_iter().map(|e| e.item.1.clone()))
                    .collect()
            }),
        }
    }
}

/// Script interpreter holding the alias environment.
pub struct Executor {
    ctx: Context,
    env: HashMap<String, Relation>,
}

impl Executor {
    pub fn new(ctx: Context) -> Self {
        Executor { ctx, env: HashMap::new() }
    }

    /// The engine context used by this executor.
    pub fn context(&self) -> &Context {
        &self.ctx
    }

    /// Registers an in-memory relation (used by tests, examples and the
    /// demo front end to inject generated datasets).
    pub fn register(&mut self, alias: &str, schema: Vec<String>, rows: Vec<Tuple>) {
        let rdd = self.ctx.parallelize_default(rows);
        self.register_shared(alias, Arc::new(schema), rdd);
    }

    /// Registers a pre-built dataset without re-parallelizing it. A
    /// long-running service parallelizes each shared dataset once and
    /// hands every per-request executor a cheap handle clone.
    pub fn register_shared(&mut self, alias: &str, schema: Arc<Vec<String>>, rdd: Rdd<Tuple>) {
        self.env.insert(alias.to_string(), Relation { schema, data: RelData::Plain(rdd) });
    }

    /// Parses and runs a script, returning the observable outputs.
    pub fn run_script(&mut self, script: &str) -> Result<Vec<Output>, PigletError> {
        self.run_statements(parse_script(script)?)
    }

    /// Runs pre-parsed statements — the execute stage of a staged
    /// parse → normalize → plan → execute pipeline, where the caller
    /// already holds a (possibly cached and re-instantiated) plan.
    pub fn run_statements(
        &mut self,
        statements: Vec<Statement>,
    ) -> Result<Vec<Output>, PigletError> {
        let mut outputs = Vec::new();
        for stmt in statements {
            if let Some(out) = self.execute(stmt)? {
                outputs.push(out);
            }
        }
        Ok(outputs)
    }

    /// Collects an alias as rendered lines (driver-side helper).
    pub fn collect(&self, alias: &str) -> Result<Vec<Tuple>, PigletError> {
        Ok(self.relation(alias)?.tuples().collect())
    }

    /// The schema of an alias.
    pub fn schema(&self, alias: &str) -> Result<Vec<String>, PigletError> {
        Ok(self.relation(alias)?.schema.as_ref().clone())
    }

    fn relation(&self, alias: &str) -> Result<&Relation, PigletError> {
        self.env.get(alias).ok_or_else(|| exec_err(format!("unknown alias {alias:?}")))
    }

    fn field_index(schema: &[String], name: &str) -> Result<usize, PigletError> {
        schema
            .iter()
            .position(|f| f == name)
            .ok_or_else(|| exec_err(format!("unknown field {name:?} (schema: {schema:?})")))
    }

    fn define(&mut self, alias: String, rel: Relation) {
        self.env.insert(alias, rel);
    }

    fn execute(&mut self, stmt: Statement) -> Result<Option<Output>, PigletError> {
        match stmt {
            Statement::Load { alias, path, schema } => {
                let rel = self.load_csv(&path, &schema)?;
                self.define(alias, rel);
                Ok(None)
            }
            Statement::Filter { alias, input, expr } => {
                let rel = self.relation(&input)?;
                let schema = rel.schema.clone();
                validate_expr(&expr, &schema)?;
                let compiled = Arc::new(expr);
                let s2 = schema.clone();
                let rdd = rel.tuples().filter(move |t| eval(&compiled, &s2, t).is_truthy());
                self.define(alias, Relation { schema, data: RelData::Plain(rdd) });
                Ok(None)
            }
            Statement::Foreach { alias, input, projections } => {
                let rel = self.relation(&input)?;
                let in_schema = rel.schema.clone();
                let mut out_schema = Vec::new();
                for (i, p) in projections.iter().enumerate() {
                    validate_expr(&p.expr, &in_schema)?;
                    out_schema.push(match (&p.alias, &p.expr) {
                        (Some(a), _) => a.clone(),
                        (None, Expr::Field(f)) => f.clone(),
                        (None, _) => format!("f{i}"),
                    });
                }
                let exprs: Arc<Vec<Projection>> = Arc::new(projections);
                let s2 = in_schema.clone();
                let rdd = rel
                    .tuples()
                    .map(move |t| exprs.iter().map(|p| eval(&p.expr, &s2, &t)).collect::<Tuple>());
                self.define(
                    alias,
                    Relation { schema: Arc::new(out_schema), data: RelData::Plain(rdd) },
                );
                Ok(None)
            }
            Statement::SpatialFilter { alias, input, pred, field, query } => {
                let rel = self.relation(&input)?;
                let schema = rel.schema.clone();
                let query = const_geom(&query, &schema)?;
                let pred = to_st_predicate(&pred);
                let fidx = Self::field_index(&schema, &field)?;
                let filtered: SpatialRdd<Tuple> = match &rel.data {
                    RelData::Spatial { srdd, field: kf } if *kf == fidx => {
                        srdd.filter(&query, pred)
                    }
                    RelData::Indexed { idx, field: kf } if *kf == fidx => {
                        idx.filter(&query, pred).spatial()
                    }
                    _ => self.keyed(rel, fidx)?.filter(&query, pred),
                };
                let rdd = filtered.rdd().map(|(_, t)| t);
                self.define(alias, Relation { schema, data: RelData::Plain(rdd) });
                Ok(None)
            }
            Statement::Partition { alias, input, spec, field } => {
                let rel = self.relation(&input)?;
                let schema = rel.schema.clone();
                let fidx = Self::field_index(&schema, &field)?;
                let keyed = self.keyed(rel, fidx)?;
                let summary = keyed.summarize();
                let partitioner: Arc<dyn SpatialPartitioner> = match spec {
                    PartitionerSpec::Grid { dims } => {
                        Arc::new(GridPartitioner::build(dims.max(1), &summary))
                    }
                    PartitionerSpec::Bsp { max_cost, side_length } => {
                        Arc::new(BspPartitioner::build(max_cost, side_length, &summary))
                    }
                };
                let srdd = keyed.partition_by(partitioner);
                self.define(
                    alias,
                    Relation { schema, data: RelData::Spatial { srdd, field: fidx } },
                );
                Ok(None)
            }
            Statement::Index { alias, input, order } => {
                let rel = self.relation(&input)?;
                let schema = rel.schema.clone();
                match &rel.data {
                    RelData::Spatial { srdd, field } => {
                        let idx = srdd.live_index(order.max(2));
                        let field = *field;
                        self.define(alias, Relation { schema, data: RelData::Indexed { idx, field } });
                        Ok(None)
                    }
                    RelData::Indexed { .. } => Err(exec_err("relation is already indexed")),
                    RelData::Plain(_) => Err(exec_err(
                        "INDEX requires a spatially PARTITIONed relation (so the key field is known)",
                    )),
                }
            }
            Statement::SpatialJoin { alias, left, left_field, right, right_field, pred } => {
                let lrel = self.relation(&left)?;
                let rrel = self.relation(&right)?;
                let lschema = lrel.schema.clone();
                let rschema = rrel.schema.clone();
                let lf = Self::field_index(&lschema, &left_field)?;
                let rf = Self::field_index(&rschema, &right_field)?;
                let lkeyed = self.keyed(lrel, lf)?;
                let rkeyed = self.keyed(rrel, rf)?;
                let pred = to_st_predicate(&pred);
                let joined = lkeyed.join(&rkeyed, pred, JoinConfig::default());
                let rdd = joined.map(|((_, lt), (_, rt))| {
                    let mut t = lt;
                    t.extend(rt);
                    t
                });
                // merge schemas, disambiguating duplicate names
                let mut schema: Vec<String> = lschema.as_ref().clone();
                for name in rschema.iter() {
                    if schema.contains(name) {
                        schema.push(format!("{right}_{name}"));
                    } else {
                        schema.push(name.clone());
                    }
                }
                self.define(
                    alias,
                    Relation { schema: Arc::new(schema), data: RelData::Plain(rdd) },
                );
                Ok(None)
            }
            Statement::Knn { alias, input, field, query, k } => {
                let rel = self.relation(&input)?;
                let schema = rel.schema.clone();
                let fidx = Self::field_index(&schema, &field)?;
                let query = const_geom(&query, &schema)?;
                let result = match &rel.data {
                    RelData::Indexed { idx, field: kf } if *kf == fidx => {
                        idx.knn(&query, k, DistanceFn::Euclidean)
                    }
                    _ => self.keyed(rel, fidx)?.knn(&query, k, DistanceFn::Euclidean),
                };
                let rows: Vec<Tuple> = result
                    .into_iter()
                    .map(|(d, (_, mut t))| {
                        t.push(Value::Double(d));
                        t
                    })
                    .collect();
                let mut out_schema = schema.as_ref().clone();
                out_schema.push("distance".to_string());
                let n = rows.len().max(1);
                let rdd = self.ctx.parallelize(rows, n.min(self.ctx.default_partitions()));
                self.define(
                    alias,
                    Relation { schema: Arc::new(out_schema), data: RelData::Plain(rdd) },
                );
                Ok(None)
            }
            Statement::Cluster { alias, input, eps, min_pts, field } => {
                if eps <= 0.0 {
                    return Err(exec_err("DBSCAN eps must be positive"));
                }
                if min_pts == 0 {
                    return Err(exec_err("DBSCAN minPts must be at least 1"));
                }
                let rel = self.relation(&input)?;
                let schema = rel.schema.clone();
                let fidx = Self::field_index(&schema, &field)?;
                let keyed = self.keyed(rel, fidx)?;
                let clustered = dbscan(&keyed, DbscanParams::new(eps, min_pts));
                let rdd = clustered.map(|(_, mut t, cluster)| {
                    t.push(match cluster {
                        Some(c) => Value::Int(c as i64),
                        None => Value::Null,
                    });
                    t
                });
                let mut out_schema = schema.as_ref().clone();
                out_schema.push("cluster".to_string());
                self.define(
                    alias,
                    Relation { schema: Arc::new(out_schema), data: RelData::Plain(rdd) },
                );
                Ok(None)
            }
            Statement::Colocate {
                alias,
                input,
                category_field,
                geo_field,
                distance,
                min_participation,
            } => {
                if distance <= 0.0 {
                    return Err(exec_err("COLOCATE distance must be positive"));
                }
                if !(0.0..=1.0).contains(&min_participation) {
                    return Err(exec_err("COLOCATE minPI must be in [0, 1]"));
                }
                let rel = self.relation(&input)?;
                let schema = rel.schema.clone();
                let cat_idx = Self::field_index(&schema, &category_field)?;
                let geo_idx = Self::field_index(&schema, &geo_field)?;
                let keyed = self.keyed(rel, geo_idx)?;
                let patterns = colocation_patterns(
                    &keyed,
                    move |t: &Tuple| t[cat_idx].to_string(),
                    ColocationParams::new(distance, min_participation),
                );
                let rows: Vec<Tuple> = patterns
                    .into_iter()
                    .map(|p| {
                        vec![
                            Value::Str(p.categories.0),
                            Value::Str(p.categories.1),
                            Value::Double(p.participation_index),
                            Value::Int(p.pair_count as i64),
                        ]
                    })
                    .collect();
                let parts = rows.len().max(1).min(self.ctx.default_partitions());
                let rdd = self.ctx.parallelize(rows, parts);
                let out_schema = vec!["cat_a".into(), "cat_b".into(), "pi".into(), "pairs".into()];
                self.define(
                    alias,
                    Relation { schema: Arc::new(out_schema), data: RelData::Plain(rdd) },
                );
                Ok(None)
            }
            Statement::GroupCount { alias, input, field } => {
                let rel = self.relation(&input)?;
                let schema = rel.schema.clone();
                let fidx = Self::field_index(&schema, &field)?;
                // group on the display form (Value is not hashable), keep
                // a representative original value per group
                let counted = rel
                    .tuples()
                    .map(move |t| (t[fidx].to_string(), (t[fidx].clone(), 1u64)))
                    .reduce_by_key(self.ctx.default_partitions(), |(v, a), (_, b)| (v, a + b))
                    .map(|(_, (v, count))| vec![v, Value::Int(count as i64)]);
                let out_schema = vec![field, "count".to_string()];
                self.define(
                    alias,
                    Relation { schema: Arc::new(out_schema), data: RelData::Plain(counted) },
                );
                Ok(None)
            }
            Statement::Limit { alias, input, n } => {
                let rel = self.relation(&input)?;
                let schema = rel.schema.clone();
                let rows = rel.tuples().take(n);
                let parts = rows.len().max(1).min(self.ctx.default_partitions());
                let rdd = self.ctx.parallelize(rows, parts);
                self.define(alias, Relation { schema, data: RelData::Plain(rdd) });
                Ok(None)
            }
            Statement::OrderBy { alias, input, field, desc } => {
                let rel = self.relation(&input)?;
                let schema = rel.schema.clone();
                let fidx = Self::field_index(&schema, &field)?;
                // distributed sample-sort on an order-preserving encoding
                // of the field: numbers before strings before geometries
                // before nulls, numerically/lexically within each class
                let parts = self.ctx.default_partitions();
                let key = move |t: &Tuple| sort_key(&t[fidx]);
                let rdd = if desc {
                    rel.tuples().sort_by(parts, move |t| std::cmp::Reverse(key(t)))
                } else {
                    rel.tuples().sort_by(parts, key)
                };
                self.define(alias, Relation { schema, data: RelData::Plain(rdd) });
                Ok(None)
            }
            Statement::Dump { input } => {
                let rel = self.relation(&input)?;
                let lines = rel.tuples().collect().iter().map(format_tuple).collect();
                Ok(Some(Output::Dump { alias: input, lines }))
            }
            Statement::Describe { input } => {
                let rel = self.relation(&input)?;
                let schema = format!("{}: ({})", input, rel.schema.join(", "));
                Ok(Some(Output::Describe { alias: input, schema }))
            }
            Statement::Explain { input } => {
                let rel = self.relation(&input)?;
                let (form, lineage) = match &rel.data {
                    RelData::Plain(rdd) => ("plain".to_string(), rdd.explain()),
                    RelData::Spatial { srdd, field } => (
                        format!(
                            "spatially partitioned on field #{field} ({} partitions)",
                            srdd.num_partitions()
                        ),
                        srdd.rdd().explain(),
                    ),
                    RelData::Indexed { idx, field } => (
                        format!(
                            "live-indexed on field #{field} (order {}, {} partitions)",
                            idx.order(),
                            idx.num_partitions()
                        ),
                        idx.trees().explain(),
                    ),
                };
                let plan = format!(
                    "{input}: ({})\nform: {form}\nlineage:\n{lineage}",
                    rel.schema.join(", ")
                );
                Ok(Some(Output::Explained { alias: input, plan }))
            }
            Statement::Store { input, path } => {
                let rel = self.relation(&input)?;
                let rows = rel.tuples().collect();
                let mut out = String::new();
                for t in &rows {
                    let fields: Vec<String> = t
                        .iter()
                        .map(|v| match v {
                            Value::Geom(g) => format!("\"{g}\""),
                            other => other.to_string(),
                        })
                        .collect();
                    out.push_str(&fields.join(","));
                    out.push('\n');
                }
                std::fs::write(&path, out)
                    .map_err(|e| exec_err(format!("cannot write {path:?}: {e}")))?;
                Ok(Some(Output::Stored { alias: input, path, records: rows.len() }))
            }
        }
    }

    /// Keyed `(STObject, Tuple)` view of a relation by field index,
    /// preserving spatial partitioning when the key field matches.
    fn keyed(&self, rel: &Relation, field: usize) -> Result<SpatialRdd<Tuple>, PigletError> {
        match &rel.data {
            RelData::Spatial { srdd, field: kf } if *kf == field => Ok(srdd.clone()),
            _ => {
                let rdd = rel.tuples().map(move |t| {
                    let key = match &t[field] {
                        Value::Geom(g) => g.clone(),
                        // non-geometry keys become empty points far away;
                        // they never match a predicate
                        _ => STObject::point(f64::NAN, f64::NAN),
                    };
                    (key, t)
                });
                Ok(rdd.spatial())
            }
        }
    }

    fn load_csv(&self, path: &str, schema: &[(String, String)]) -> Result<Relation, PigletError> {
        if schema.is_empty() {
            return Err(exec_err("LOAD requires an AS (...) schema"));
        }
        let text = std::fs::read_to_string(path)
            .map_err(|e| exec_err(format!("cannot read {path:?}: {e}")))?;
        let mut rows = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields = split_csv(line);
            if fields.len() != schema.len() {
                return Err(exec_err(format!(
                    "{path}:{}: expected {} fields, got {}",
                    lineno + 1,
                    schema.len(),
                    fields.len()
                )));
            }
            let mut tuple = Vec::with_capacity(fields.len());
            for ((name, ty), raw) in schema.iter().zip(fields) {
                tuple.push(
                    parse_field(&raw, ty).map_err(|e| {
                        exec_err(format!("{path}:{}: field {name}: {e}", lineno + 1))
                    })?,
                );
            }
            rows.push(tuple);
        }
        let names = schema.iter().map(|(n, _)| n.clone()).collect();
        let rdd = self.ctx.parallelize_default(rows);
        Ok(Relation { schema: Arc::new(names), data: RelData::Plain(rdd) })
    }
}

/// Total-order encoding of a [`Value`] for distributed sorting:
/// `(class, numeric-bits, text)` where the numeric bits are the standard
/// order-preserving IEEE-754 transform.
fn sort_key(v: &Value) -> (u8, u64, String) {
    fn f64_bits_ordered(v: f64) -> u64 {
        let b = v.to_bits();
        if v.is_sign_negative() {
            !b
        } else {
            b ^ 0x8000_0000_0000_0000
        }
    }
    match v {
        Value::Bool(b) => (0, f64_bits_ordered(if *b { 1.0 } else { 0.0 }), String::new()),
        Value::Int(i) => (0, f64_bits_ordered(*i as f64), String::new()),
        Value::Double(d) => (0, f64_bits_ordered(*d), String::new()),
        Value::Str(s) => (1, 0, s.clone()),
        Value::Geom(g) => (2, 0, g.to_string()),
        Value::Null => (3, 0, String::new()),
    }
}

/// Splits a CSV line on commas outside double quotes; strips quotes.
fn split_csv(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    for ch in line.chars() {
        match ch {
            '"' => in_quotes = !in_quotes,
            ',' if !in_quotes => fields.push(std::mem::take(&mut cur)),
            other => cur.push(other),
        }
    }
    fields.push(cur);
    fields.into_iter().map(|f| f.trim().to_string()).collect()
}

fn parse_field(raw: &str, ty: &str) -> Result<Value, String> {
    match ty {
        "int" | "long" => raw.parse::<i64>().map(Value::Int).map_err(|e| e.to_string()),
        "float" | "double" => raw.parse::<f64>().map(Value::Double).map_err(|e| e.to_string()),
        "chararray" => Ok(Value::Str(raw.to_string())),
        "boolean" => raw.parse::<bool>().map(Value::Bool).map_err(|e| e.to_string()),
        "stobject" | "geometry" | "wkt" => Geometry::from_wkt(raw)
            .map(|g| Value::Geom(STObject::new(g)))
            .map_err(|e| e.to_string()),
        other => Err(format!("unknown type {other:?}")),
    }
}

fn to_st_predicate(p: &SpatialPredicate) -> STPredicate {
    match p {
        SpatialPredicate::Intersects => STPredicate::Intersects,
        SpatialPredicate::Contains => STPredicate::Contains,
        SpatialPredicate::ContainedBy => STPredicate::ContainedBy,
        SpatialPredicate::WithinDistance { max_dist, dist_fn } => {
            STPredicate::WithinDistance { max_dist: *max_dist, dist_fn: *dist_fn }
        }
    }
}

/// Evaluates a constant expression (no field references) to an STObject.
fn const_geom(expr: &Expr, schema: &Arc<Vec<String>>) -> Result<STObject, PigletError> {
    validate_expr(expr, schema)?;
    match eval(expr, schema, &Vec::new()) {
        Value::Geom(g) => Ok(g),
        other => Err(exec_err(format!(
            "query expression must produce an stobject, got {}",
            other.type_name()
        ))),
    }
}

/// Checks field references and function arities up front, so runtime
/// evaluation can be infallible (bad dynamic types yield `Null`).
fn validate_expr(expr: &Expr, schema: &[String]) -> Result<(), PigletError> {
    match expr {
        Expr::Field(name) => {
            Executor::field_index(schema, name)?;
            Ok(())
        }
        Expr::IntLit(_) | Expr::DoubleLit(_) | Expr::StrLit(_) | Expr::BoolLit(_) => Ok(()),
        Expr::Param(i) => Err(exec_err(format!(
            "unbound plan parameter ?{i}: normalized templates must be instantiated before execution"
        ))),
        Expr::Not(e) | Expr::Neg(e) => validate_expr(e, schema),
        Expr::Bin(_, a, b) => {
            validate_expr(a, schema)?;
            validate_expr(b, schema)
        }
        Expr::Call(name, args) => {
            let arity_ok = match name.as_str() {
                "ST" | "STOBJECT" => (1..=3).contains(&args.len()),
                "GEO" => args.len() == 1,
                "INTERSECTS" | "CONTAINS" | "CONTAINEDBY" | "DISTANCE" => args.len() == 2,
                "WITHINDISTANCE" => args.len() == 3,
                "X" | "Y" | "AREA" | "WKT" | "TSTART" => args.len() == 1,
                other => return Err(exec_err(format!("unknown function {other}"))),
            };
            if !arity_ok {
                return Err(exec_err(format!("wrong argument count for {name}")));
            }
            for a in args {
                validate_expr(a, schema)?;
            }
            Ok(())
        }
    }
}

/// Evaluates an expression against a tuple. Type mismatches produce
/// `Null`, which is falsy and propagates.
fn eval(expr: &Expr, schema: &[String], tuple: &Tuple) -> Value {
    match expr {
        Expr::Field(name) => schema
            .iter()
            .position(|f| f == name)
            .and_then(|i| tuple.get(i).cloned())
            .unwrap_or(Value::Null),
        Expr::IntLit(v) => Value::Int(*v),
        Expr::DoubleLit(v) => Value::Double(*v),
        Expr::StrLit(s) => Value::Str(s.clone()),
        Expr::BoolLit(b) => Value::Bool(*b),
        // unbound parameters are rejected by validate_expr; evaluation
        // treats a stray one like any other type error
        Expr::Param(_) => Value::Null,
        Expr::Not(e) => match eval(e, schema, tuple) {
            Value::Bool(b) => Value::Bool(!b),
            _ => Value::Null,
        },
        Expr::Neg(e) => match eval(e, schema, tuple) {
            Value::Int(v) => Value::Int(-v),
            Value::Double(v) => Value::Double(-v),
            _ => Value::Null,
        },
        Expr::Bin(op, a, b) => {
            let va = eval(a, schema, tuple);
            let vb = eval(b, schema, tuple);
            eval_bin(*op, va, vb)
        }
        Expr::Call(name, args) => {
            let vals: Vec<Value> = args.iter().map(|a| eval(a, schema, tuple)).collect();
            eval_call(name, &vals)
        }
    }
}

fn eval_bin(op: BinOp, a: Value, b: Value) -> Value {
    use BinOp::*;
    match op {
        Or => match (&a, &b) {
            (Value::Bool(x), Value::Bool(y)) => Value::Bool(*x || *y),
            _ => Value::Null,
        },
        And => match (&a, &b) {
            (Value::Bool(x), Value::Bool(y)) => Value::Bool(*x && *y),
            _ => Value::Null,
        },
        Eq => Value::Bool(a.loose_eq(&b)),
        Neq => Value::Bool(!a.loose_eq(&b)),
        Lt | Lte | Gt | Gte => match a.loose_cmp(&b) {
            Some(ord) => Value::Bool(match op {
                Lt => ord.is_lt(),
                Lte => ord.is_le(),
                Gt => ord.is_gt(),
                Gte => ord.is_ge(),
                _ => unreachable!(),
            }),
            None => Value::Null,
        },
        Add | Sub | Mul | Div => match (&a, &b) {
            (Value::Int(x), Value::Int(y)) => match op {
                Add => Value::Int(x + y),
                Sub => Value::Int(x - y),
                Mul => Value::Int(x * y),
                Div => {
                    if *y == 0 {
                        Value::Null
                    } else {
                        Value::Int(x / y)
                    }
                }
                _ => unreachable!(),
            },
            _ => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => Value::Double(match op {
                    Add => x + y,
                    Sub => x - y,
                    Mul => x * y,
                    Div => x / y,
                    _ => unreachable!(),
                }),
                _ => Value::Null,
            },
        },
    }
}

fn eval_call(name: &str, args: &[Value]) -> Value {
    match name {
        // ST(wkt), ST(wkt, instant), ST(wkt, begin, end)
        "ST" | "STOBJECT" => {
            let Some(wkt) = args.first().and_then(|v| v.as_str()) else {
                return Value::Null;
            };
            let Ok(geo) = Geometry::from_wkt(wkt) else { return Value::Null };
            match args.len() {
                1 => Value::Geom(STObject::new(geo)),
                2 => match args[1].as_i64() {
                    Some(t) => Value::Geom(STObject::with_time(geo, Temporal::instant(t))),
                    None => Value::Null,
                },
                _ => match (args[1].as_i64(), args[2].as_i64()) {
                    (Some(b), Some(e)) if e >= b => {
                        Value::Geom(STObject::with_time(geo, Temporal::interval(b, e)))
                    }
                    _ => Value::Null,
                },
            }
        }
        "GEO" => match args[0].as_str().and_then(|w| Geometry::from_wkt(w).ok()) {
            Some(g) => Value::Geom(STObject::new(g)),
            None => Value::Null,
        },
        "INTERSECTS" | "CONTAINS" | "CONTAINEDBY" => match (args[0].as_geom(), args[1].as_geom()) {
            (Some(a), Some(b)) => Value::Bool(match name {
                "INTERSECTS" => a.intersects(b),
                "CONTAINS" => a.contains(b),
                _ => a.contained_by(b),
            }),
            _ => Value::Null,
        },
        "DISTANCE" => match (args[0].as_geom(), args[1].as_geom()) {
            (Some(a), Some(b)) => Value::Double(a.distance(b, DistanceFn::Euclidean)),
            _ => Value::Null,
        },
        "WITHINDISTANCE" => match (args[0].as_geom(), args[1].as_geom(), args[2].as_f64()) {
            (Some(a), Some(b), Some(d)) => Value::Bool(a.distance(b, DistanceFn::Euclidean) <= d),
            _ => Value::Null,
        },
        "X" => match args[0].as_geom() {
            Some(g) => Value::Double(g.centroid().x),
            None => Value::Null,
        },
        "Y" => match args[0].as_geom() {
            Some(g) => Value::Double(g.centroid().y),
            None => Value::Null,
        },
        "AREA" => match args[0].as_geom() {
            Some(g) => Value::Double(g.envelope().area()),
            None => Value::Null,
        },
        "WKT" => match args[0].as_geom() {
            Some(g) => Value::Str(g.geo().to_wkt()),
            None => Value::Null,
        },
        "TSTART" => match args[0].as_geom().and_then(|g| g.time().map(|t| t.start())) {
            Some(t) => Value::Int(t),
            None => Value::Null,
        },
        _ => Value::Null,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn executor() -> Executor {
        Executor::new(Context::with_parallelism(4))
    }

    fn event_rows() -> (Vec<String>, Vec<Tuple>) {
        let schema = vec!["id".to_string(), "cat".to_string(), "t".to_string(), "wkt".to_string()];
        let rows: Vec<Tuple> = (0..50)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::Str(if i % 2 == 0 { "concert" } else { "protest" }.into()),
                    Value::Int(i * 10),
                    Value::Str(format!("POINT({} {})", i % 10, i / 10)),
                ]
            })
            .collect();
        (schema, rows)
    }

    #[test]
    fn filter_and_dump() {
        let mut ex = executor();
        let (schema, rows) = event_rows();
        ex.register("ev", schema, rows);
        let out = ex.run_script("f = FILTER ev BY cat == 'concert' AND id < 10;\nDUMP f;").unwrap();
        match &out[0] {
            Output::Dump { lines, .. } => {
                assert_eq!(lines.len(), 5);
                assert!(lines[0].starts_with("(0,concert,"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn foreach_builds_stobjects() {
        let mut ex = executor();
        let (schema, rows) = event_rows();
        ex.register("ev", schema, rows);
        ex.run_script("g = FOREACH ev GENERATE id, ST(wkt, t) AS obj;").unwrap();
        assert_eq!(ex.schema("g").unwrap(), vec!["id", "obj"]);
        let tuples = ex.collect("g").unwrap();
        assert_eq!(tuples.len(), 50);
        assert!(matches!(tuples[0][1], Value::Geom(_)));
    }

    #[test]
    fn spatial_filter_pipeline() {
        let mut ex = executor();
        let (schema, rows) = event_rows();
        ex.register("ev", schema, rows);
        let out = ex
            .run_script(
                r#"
                g = FOREACH ev GENERATE id, ST(wkt, t) AS obj;
                s = SPATIAL_FILTER g BY CONTAINEDBY(obj, ST('POLYGON((0 0, 4.5 0, 4.5 2.5, 0 2.5, 0 0))', 0, 10000));
                DUMP s;
                "#,
            )
            .unwrap();
        match &out[0] {
            Output::Dump { lines, .. } => {
                // lattice points with x in 0..=4, y in 0..=2 → ids: x + 10*y
                assert_eq!(lines.len(), 15);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn partitioned_and_indexed_filter_agree_with_plain() {
        let mut ex = executor();
        let (schema, rows) = event_rows();
        ex.register("ev", schema, rows);
        let script = r#"
            g = FOREACH ev GENERATE id, ST(wkt, t) AS obj;
            plain = SPATIAL_FILTER g BY INTERSECTS(obj, ST('POLYGON((1 1, 6 1, 6 4, 1 4, 1 1))', 0, 10000));
            p = PARTITION g BY GRID(3) ON obj;
            part = SPATIAL_FILTER p BY INTERSECTS(obj, ST('POLYGON((1 1, 6 1, 6 4, 1 4, 1 1))', 0, 10000));
            i = INDEX p ORDER 5;
            idx = SPATIAL_FILTER i BY INTERSECTS(obj, ST('POLYGON((1 1, 6 1, 6 4, 1 4, 1 1))', 0, 10000));
        "#;
        ex.run_script(script).unwrap();
        let count = |alias: &str| ex.collect(alias).unwrap().len();
        assert!(count("plain") > 0);
        assert_eq!(count("plain"), count("part"));
        assert_eq!(count("plain"), count("idx"));
    }

    #[test]
    fn spatial_join_concatenates_schemas() {
        let mut ex = executor();
        ex.register(
            "a",
            vec!["id".into(), "obj".into()],
            vec![
                vec![Value::Int(1), Value::Geom(STObject::point(0.0, 0.0))],
                vec![Value::Int(2), Value::Geom(STObject::point(5.0, 5.0))],
            ],
        );
        ex.register(
            "b",
            vec!["id".into(), "obj".into()],
            vec![vec![Value::Int(7), Value::Geom(STObject::point(0.0, 0.0))]],
        );
        ex.run_script("j = SPATIAL_JOIN a BY obj, b BY obj USING INTERSECTS;").unwrap();
        assert_eq!(ex.schema("j").unwrap(), vec!["id", "obj", "b_id", "b_obj"]);
        let rows = ex.collect("j").unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Value::Int(1));
        assert_eq!(rows[0][2], Value::Int(7));
    }

    #[test]
    fn knn_statement() {
        let mut ex = executor();
        let (schema, rows) = event_rows();
        ex.register("ev", schema, rows);
        ex.run_script(
            "g = FOREACH ev GENERATE id, ST(wkt) AS obj;\nk = KNN g BY obj QUERY ST('POINT(0 0)') K 3;",
        )
        .unwrap();
        let rows = ex.collect("k").unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0][0], Value::Int(0), "nearest to origin is id 0");
        assert_eq!(ex.schema("k").unwrap().last().unwrap(), "distance");
    }

    #[test]
    fn cluster_statement() {
        let mut ex = executor();
        // two tight groups far apart
        let mut rows = Vec::new();
        for i in 0..8 {
            rows.push(vec![Value::Int(i), Value::Geom(STObject::point(i as f64 * 0.1, 0.0))]);
        }
        for i in 0..8 {
            rows.push(vec![
                Value::Int(100 + i),
                Value::Geom(STObject::point(100.0 + i as f64 * 0.1, 0.0)),
            ]);
        }
        ex.register("pts", vec!["id".into(), "obj".into()], rows);
        ex.run_script("c = CLUSTER pts BY DBSCAN(0.2, 3) ON obj;").unwrap();
        let out = ex.collect("c").unwrap();
        let clusters: std::collections::BTreeSet<String> =
            out.iter().map(|t| t.last().unwrap().to_string()).collect();
        assert_eq!(clusters.len(), 2, "two clusters expected: {clusters:?}");
    }

    #[test]
    fn colocate_statement() {
        let mut ex = executor();
        let mut rows = Vec::new();
        for i in 0..10 {
            let x = i as f64 * 10.0;
            rows.push(vec![Value::Str("cafe".into()), Value::Geom(STObject::point(x, 0.0))]);
            rows.push(vec![
                Value::Str("bakery".into()),
                Value::Geom(STObject::point(x + 0.5, 0.0)),
            ]);
        }
        ex.register("shops", vec!["cat".into(), "obj".into()], rows);
        ex.run_script("p = COLOCATE shops BY cat ON obj DISTANCE 1.0 MINPI 0.5;\nDUMP p;").unwrap();
        let got = ex.collect("p").unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0][0], Value::Str("bakery".into()));
        assert_eq!(got[0][1], Value::Str("cafe".into()));
        assert_eq!(got[0][2], Value::Double(1.0));
        assert_eq!(ex.schema("p").unwrap(), vec!["cat_a", "cat_b", "pi", "pairs"]);
        // bad parameters error out
        assert!(ex.run_script("x = COLOCATE shops BY cat ON obj DISTANCE 0 MINPI 0.5;").is_err());
        assert!(ex.run_script("x = COLOCATE shops BY cat ON obj DISTANCE 1 MINPI 2;").is_err());
    }

    #[test]
    fn explain_statement() {
        let mut ex = executor();
        let (schema, rows) = event_rows();
        ex.register("ev", schema, rows);
        let out = ex
            .run_script(
                "g = FOREACH ev GENERATE id, ST(wkt, t) AS obj;\np = PARTITION g BY GRID(3) ON obj;\ni = INDEX p ORDER 5;\nEXPLAIN g;\nEXPLAIN p;\nEXPLAIN i;",
            )
            .unwrap();
        match &out[0] {
            Output::Explained { plan, .. } => {
                assert!(plan.contains("form: plain"));
                assert!(plan.contains("Map"));
            }
            other => panic!("{other:?}"),
        }
        match &out[1] {
            Output::Explained { plan, .. } => {
                assert!(plan.contains("spatially partitioned"));
                assert!(plan.contains("Shuffle"));
            }
            other => panic!("{other:?}"),
        }
        match &out[2] {
            Output::Explained { plan, .. } => {
                assert!(plan.contains("live-indexed"), "{plan}");
                assert!(plan.contains("order 5"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn group_counts_categories() {
        let mut ex = executor();
        let (schema, rows) = event_rows();
        ex.register("ev", schema, rows);
        ex.run_script("g = GROUP ev BY cat;\no = ORDER g BY cat;").unwrap();
        assert_eq!(ex.schema("g").unwrap(), vec!["cat", "count"]);
        let rows = ex.collect("o").unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][0], Value::Str("concert".into()));
        assert_eq!(rows[0][1], Value::Int(25));
        assert_eq!(rows[1][0], Value::Str("protest".into()));
        assert_eq!(rows[1][1], Value::Int(25));
    }

    #[test]
    fn limit_order_describe() {
        let mut ex = executor();
        let (schema, rows) = event_rows();
        ex.register("ev", schema, rows);
        let out = ex
            .run_script("o = ORDER ev BY id DESC;\nl = LIMIT o 3;\nDUMP l;\nDESCRIBE l;")
            .unwrap();
        match &out[0] {
            Output::Dump { lines, .. } => {
                assert_eq!(lines.len(), 3);
                assert!(lines[0].starts_with("(49,"));
            }
            other => panic!("{other:?}"),
        }
        match &out[1] {
            Output::Describe { schema, .. } => assert!(schema.contains("id, cat, t, wkt")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn load_and_store_roundtrip() {
        let mut ex = executor();
        let path = std::env::temp_dir().join(format!("piglet-load-{}.csv", std::process::id()));
        std::fs::write(&path, "1,concert,10,\"POINT (1 2)\"\n2,flood,20,\"POINT (3 4)\"\n")
            .unwrap();
        let out_path =
            std::env::temp_dir().join(format!("piglet-store-{}.csv", std::process::id()));
        let script = format!(
            "ev = LOAD '{}' AS (id:long, cat:chararray, t:long, obj:stobject);\nSTORE ev INTO '{}';",
            path.display(),
            out_path.display()
        );
        let out = ex.run_script(&script).unwrap();
        assert!(matches!(&out[0], Output::Stored { records: 2, .. }));
        let stored = std::fs::read_to_string(&out_path).unwrap();
        assert!(stored.contains("POINT (1 2)"));
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&out_path).ok();
    }

    #[test]
    fn error_cases() {
        let mut ex = executor();
        let (schema, rows) = event_rows();
        ex.register("ev", schema, rows);
        assert!(ex.run_script("DUMP missing;").is_err());
        assert!(ex.run_script("f = FILTER ev BY nosuchfield == 1;").is_err());
        assert!(ex.run_script("f = FILTER ev BY FROB(id) == 1;").is_err());
        assert!(ex.run_script("i = INDEX ev ORDER 5;").is_err(), "index needs partitioning");
        assert!(ex.run_script("c = CLUSTER ev BY DBSCAN(0.5, 0) ON wkt;").is_err());
        // spatial filter with a non-geometry query expression
        assert!(ex.run_script("s = SPATIAL_FILTER ev BY INTERSECTS(wkt, 1 + 2);").is_err());
    }
}
