//! The dynamic value model of Piglet relations.

use serde::{Deserialize, Serialize};
use stark::STObject;
use std::fmt;

/// A field value in a Piglet tuple.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Double(f64),
    Str(String),
    Geom(STObject),
}

impl Value {
    /// Type name for error messages and `DESCRIBE`.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Int(_) => "long",
            Value::Double(_) => "double",
            Value::Str(_) => "chararray",
            Value::Geom(_) => "stobject",
        }
    }

    /// Truthiness for `FILTER BY` (only `Bool(true)` passes).
    pub fn is_truthy(&self) -> bool {
        matches!(self, Value::Bool(true))
    }

    /// Numeric view, coercing ints to doubles.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Double(d) => Some(*d),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Double(d) => Some(*d as i64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_geom(&self) -> Option<&STObject> {
        match self {
            Value::Geom(g) => Some(g),
            _ => None,
        }
    }

    /// Equality with numeric coercion (`1 == 1.0` holds).
    pub fn loose_eq(&self, other: &Value) -> bool {
        match (self.as_f64(), other.as_f64()) {
            (Some(a), Some(b)) => a == b,
            _ => self == other,
        }
    }

    /// Ordering with numeric coercion; strings compare lexically.
    pub fn loose_cmp(&self, other: &Value) -> Option<std::cmp::Ordering> {
        match (self, other) {
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            _ => match (self.as_f64(), other.as_f64()) {
                (Some(a), Some(b)) => a.partial_cmp(&b),
                _ => None,
            },
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Double(d) => write!(f, "{d}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Geom(g) => write!(f, "{g}"),
        }
    }
}

/// A row of a relation.
pub type Tuple = Vec<Value>;

/// Renders a tuple in Pig's `(a,b,c)` style.
pub fn format_tuple(t: &Tuple) -> String {
    let fields: Vec<String> = t.iter().map(|v| v.to_string()).collect();
    format!("({})", fields.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness() {
        assert!(Value::Bool(true).is_truthy());
        assert!(!Value::Bool(false).is_truthy());
        assert!(!Value::Int(1).is_truthy());
        assert!(!Value::Null.is_truthy());
    }

    #[test]
    fn numeric_coercion() {
        assert!(Value::Int(1).loose_eq(&Value::Double(1.0)));
        assert!(!Value::Int(1).loose_eq(&Value::Double(1.5)));
        assert_eq!(Value::Int(1).loose_cmp(&Value::Double(2.0)), Some(std::cmp::Ordering::Less));
        assert_eq!(
            Value::Str("b".into()).loose_cmp(&Value::Str("a".into())),
            Some(std::cmp::Ordering::Greater)
        );
        assert_eq!(Value::Str("a".into()).loose_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn display_and_format() {
        let t = vec![Value::Int(1), Value::Str("x".into()), Value::Double(2.5)];
        assert_eq!(format_tuple(&t), "(1,x,2.5)");
        assert_eq!(Value::Geom(STObject::point(1.0, 2.0)).to_string(), "POINT (1 2)");
    }

    #[test]
    fn type_names() {
        assert_eq!(Value::Int(1).type_name(), "long");
        assert_eq!(Value::Geom(STObject::point(0.0, 0.0)).type_name(), "stobject");
    }
}
