//! Property tests for the plan-cache key: requests that differ only in
//! literals, whitespace, comments or alias names must share one cache
//! entry, and semantically different scripts must never collide.

use proptest::prelude::*;
use stark_piglet::{instantiate, normalize_script, parse_script};

fn key(script: &str) -> String {
    normalize_script(script).unwrap().key
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Literal values never reach the key: any two thresholds and any
    /// two string constants produce the same cache entry.
    #[test]
    fn literal_values_share_a_key(a in -1000i64..1000, b in -1000i64..1000,
                                  sa in "[a-z]{1,8}", sb in "[a-z]{1,8}") {
        let ka = key(&format!("f = FILTER ev BY id < {a} AND cat == '{sa}';\nDUMP f;"));
        let kb = key(&format!("f = FILTER ev BY id < {b} AND cat == '{sb}';\nDUMP f;"));
        prop_assert_eq!(ka, kb);
    }

    /// Alias renaming (consistent, avoiding keywords) and whitespace
    /// padding never change the key.
    #[test]
    fn alias_names_and_whitespace_share_a_key(
        suffix in "[a-z0-9_]{0,10}",
        pad in "[ \t]{0,6}",
        threshold in -100i64..100,
    ) {
        // prefix keeps the alias from ever being a keyword
        let alias = format!("x{suffix}");
        let canonical = key("q = FILTER ev BY id < 5;\nz = LIMIT q 3;\nDUMP z;");
        let variant = key(&format!(
            "{pad}{alias} = FILTER ev{pad} BY id < {threshold};{pad}\n\
             {pad}out2 = LIMIT {alias} 3; -- trailing comment\nDUMP out2;{pad}"
        ));
        prop_assert_eq!(variant, canonical);
    }

    /// Structural constants ARE the plan: different LIMIT counts must
    /// not collide (they change the operator, not a binding).
    #[test]
    fn limit_counts_never_collide(a in 0usize..50, b in 51usize..100) {
        prop_assert_ne!(
            key(&format!("l = LIMIT ev {a};")),
            key(&format!("l = LIMIT ev {b};"))
        );
    }

    /// Different field names are semantic: `FILTER BY id` and
    /// `FILTER BY other` never share a plan.
    #[test]
    fn field_names_never_collide(s1 in "[a-z]{1,6}", s2 in "[a-z]{1,6}") {
        // distinct prefixes keep the names distinct and non-keyword
        let (f1, f2) = (format!("fa{s1}"), format!("fz{s2}"));
        prop_assert_ne!(
            key(&format!("f = FILTER ev BY {f1} < 5;")),
            key(&format!("f = FILTER ev BY {f2} < 5;"))
        );
    }

    /// Normalize → instantiate round-trips to the same statements as
    /// parsing the canonically renamed script directly. (Non-negative
    /// literals only: normalization folds `Neg(IntLit)` into the bound
    /// value, so a negative literal instantiates to `IntLit(-n)` where
    /// a direct parse yields the equivalent `Neg(IntLit(n))`.)
    #[test]
    fn instantiate_round_trips(threshold in 0i64..100, s in "[a-z]{1,8}") {
        let script = format!("f = FILTER ev BY id < {threshold} AND cat == '{s}';\nDUMP f;");
        let n = normalize_script(&script).unwrap();
        let bound = instantiate(&n.template, &n.params).unwrap();
        let direct = parse_script(
            &format!("_r0 = FILTER ev BY id < {threshold} AND cat == '{s}';\nDUMP _r0;")
        ).unwrap();
        prop_assert_eq!(bound, direct);
    }

    /// Normalization never panics on arbitrary parseable-or-not input.
    #[test]
    fn normalize_never_panics(input in "[a-zA-Z0-9_ =;,'()<>!+*/.-]{0,200}") {
        let _ = normalize_script(&input);
    }
}

/// Statement kinds pairwise never collide: one exemplar per operator,
/// all over the same input — every key must be distinct.
#[test]
fn operator_kinds_never_collide() {
    let scripts = [
        "x = FILTER ev BY id < 5;",
        "x = FOREACH ev GENERATE id;",
        "x = LIMIT ev 5;",
        "x = ORDER ev BY id;",
        "x = ORDER ev BY id DESC;",
        "x = GROUP ev BY id;",
        "x = PARTITION ev BY GRID(4) ON obj;",
        "x = INDEX ev ORDER 5;",
        "x = KNN ev BY obj QUERY ST('POINT(0 0)') K 5;",
        "x = CLUSTER ev BY DBSCAN(1.5, 3) ON obj;",
        "DUMP ev;",
        "DESCRIBE ev;",
    ];
    let keys: Vec<String> = scripts.iter().map(|s| key(s)).collect();
    for i in 0..keys.len() {
        for j in (i + 1)..keys.len() {
            assert_ne!(keys[i], keys[j], "{:?} vs {:?}", scripts[i], scripts[j]);
        }
    }
}

/// Spatial predicates are structural: INTERSECTS vs CONTAINS plans
/// differ even with identical geometry literals.
#[test]
fn spatial_predicates_never_collide() {
    let a = key("s = SPATIAL_FILTER ev BY INTERSECTS(obj, ST('POINT(1 2)'));");
    let b = key("s = SPATIAL_FILTER ev BY CONTAINS(obj, ST('POINT(1 2)'));");
    assert_ne!(a, b);
    // ...but the geometry literal itself is a binding
    let c = key("s = SPATIAL_FILTER ev BY INTERSECTS(obj, ST('POINT(9 9)'));");
    assert_eq!(a, c);
}
