//! Robustness properties of the Piglet front end: the lexer and parser
//! must never panic, valid scripts round-trip through execution, and the
//! executor rejects rather than crashes on bad input.

use proptest::prelude::*;
use stark_engine::Context;
use stark_piglet::{parse_script, Executor, Value};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary byte soup must lex/parse to Ok or Err — never panic.
    #[test]
    fn parser_never_panics(input in ".*") {
        let _ = parse_script(&input);
    }

    /// Arbitrary ASCII with Piglet-ish characters, denser in the grammar.
    #[test]
    fn parser_never_panics_on_piglet_like_input(
        input in "[a-zA-Z0-9_ =;,'()<>!+*/.-]{0,200}"
    ) {
        let _ = parse_script(&input);
    }

    /// FILTER with a random comparison threshold equals a driver-side
    /// filter over the same rows.
    #[test]
    fn filter_matches_reference(threshold in -50i64..150) {
        let mut ex = Executor::new(Context::with_parallelism(2));
        let rows: Vec<Vec<Value>> =
            (0..100).map(|i| vec![Value::Int(i), Value::Int(i * 2)]).collect();
        ex.register("t", vec!["a".into(), "b".into()], rows.clone());
        ex.run_script(&format!("f = FILTER t BY a < {threshold};")).unwrap();
        let got = ex.collect("f").unwrap().len();
        let expect = rows.iter().filter(|r| matches!(r[0], Value::Int(v) if v < threshold)).count();
        prop_assert_eq!(got, expect);
    }

    /// LIMIT n yields min(n, len) rows.
    #[test]
    fn limit_bounds(n in 0usize..200) {
        let mut ex = Executor::new(Context::with_parallelism(2));
        let rows: Vec<Vec<Value>> = (0..57).map(|i| vec![Value::Int(i)]).collect();
        ex.register("t", vec!["a".into()], rows);
        ex.run_script(&format!("l = LIMIT t {n};")).unwrap();
        prop_assert_eq!(ex.collect("l").unwrap().len(), n.min(57));
    }

    /// Arithmetic in FOREACH agrees with Rust arithmetic.
    #[test]
    fn foreach_arithmetic(a in -100i64..100, b in 1i64..50) {
        let mut ex = Executor::new(Context::with_parallelism(2));
        ex.register("t", vec!["x".into()], vec![vec![Value::Int(a)]]);
        ex.run_script(&format!("g = FOREACH t GENERATE x * {b} + 1 AS y, x / {b} AS z;"))
            .unwrap();
        let rows = ex.collect("g").unwrap();
        prop_assert_eq!(&rows[0][0], &Value::Int(a * b + 1));
        prop_assert_eq!(&rows[0][1], &Value::Int(a / b));
    }
}

/// Scripts exercising every statement kind parse successfully (a
/// grammar-coverage regression test).
#[test]
fn full_grammar_coverage_parses() {
    let script = r#"
        raw = LOAD 'x.csv' AS (id:long, c:chararray, t:long, w:chararray);
        ev = FOREACH raw GENERATE id, c, ST(w, t) AS obj;
        f = FILTER ev BY NOT (id < 5) AND c != 'x' OR id == 99;
        p1 = PARTITION ev BY GRID(3) ON obj;
        p2 = PARTITION ev BY BSP(100, 0.5) ON obj;
        ix = INDEX p1 ORDER 5;
        s1 = SPATIAL_FILTER ix BY INTERSECTS(obj, ST('POINT(1 2)'));
        s2 = SPATIAL_FILTER p2 BY WITHINDISTANCE(obj, ST('POINT(1 2)'), 3.5, 'haversine');
        j = SPATIAL_JOIN p1 BY obj, p2 BY obj USING CONTAINS;
        k = KNN ev BY obj QUERY ST('POINT(0 0)', 1, 2) K 7;
        cl = CLUSTER ev BY DBSCAN(1.5, 3) ON obj;
        gr = GROUP ev BY c;
        o = ORDER gr BY count DESC;
        l = LIMIT o 10;
        DESCRIBE l;
        DUMP l;
        STORE l INTO 'out.csv';
    "#;
    let statements = parse_script(script).unwrap();
    assert_eq!(statements.len(), 17);
}

/// The executor surfaces errors (instead of panicking) for semantic
/// mistakes in otherwise well-formed scripts.
#[test]
fn semantic_errors_are_reported() {
    let mut ex = Executor::new(Context::with_parallelism(2));
    ex.register("t", vec!["a".into()], vec![vec![Value::Int(1)]]);
    for script in [
        "x = FILTER nope BY a == 1;",
        "x = FOREACH t GENERATE missing;",
        "x = KNN t BY a QUERY 42 K 3;", // non-geometry query
        "x = SPATIAL_JOIN t BY a, t BY missing USING INTERSECTS;",
        "x = LOAD '/no/such/file.csv' AS (a:long);",
    ] {
        assert!(ex.run_script(script).is_err(), "expected error for {script:?}");
    }
}
