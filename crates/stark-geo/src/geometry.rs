//! The geometry sum type shared by the whole workspace.

use crate::algorithms::relate;
use crate::coord::Coord;
use crate::envelope::Envelope;
use crate::error::GeoError;
use crate::linestring::LineString;
use crate::point::Point;
use crate::polygon::Polygon;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A simple-features geometry.
///
/// Predicate semantics used throughout this kernel:
///
/// * [`Geometry::intersects`] — the closed point sets share at least one
///   point (boundaries included).
/// * [`Geometry::contains`] — *covers* semantics: every point of the
///   argument lies in the closed region of `self`. Unlike strict OGC
///   `contains`, a boundary-only touch still counts; this matches what
///   spatio-temporal event queries need and sidesteps the classic JTS
///   "polygon does not contain its own boundary point" surprise.
/// * [`Geometry::distance`] — minimum Euclidean distance between the
///   closed point sets; zero if they intersect.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Geometry {
    Point(Point),
    MultiPoint(Vec<Point>),
    LineString(LineString),
    MultiLineString(Vec<LineString>),
    Polygon(Polygon),
    MultiPolygon(Vec<Polygon>),
}

impl Geometry {
    /// Parses a geometry from its WKT representation.
    pub fn from_wkt(wkt: &str) -> Result<Self, GeoError> {
        crate::wkt::parse_wkt(wkt)
    }

    /// Serialises the geometry to WKT.
    pub fn to_wkt(&self) -> String {
        crate::wkt::write_wkt(self)
    }

    /// Shorthand for a point geometry.
    pub fn point(x: f64, y: f64) -> Self {
        Geometry::Point(Point::new(x, y))
    }

    /// Axis-aligned rectangle as a polygon geometry.
    pub fn rect(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Self {
        let env = Envelope::from_bounds(min_x, min_y, max_x, max_y);
        Geometry::Polygon(Polygon::from_envelope(&env).expect("non-empty envelope"))
    }

    /// Minimum bounding rectangle of the geometry.
    pub fn envelope(&self) -> Envelope {
        match self {
            Geometry::Point(p) => p.envelope(),
            Geometry::MultiPoint(ps) => {
                ps.iter().fold(Envelope::empty(), |e, p| e.union(&p.envelope()))
            }
            Geometry::LineString(l) => l.envelope(),
            Geometry::MultiLineString(ls) => {
                ls.iter().fold(Envelope::empty(), |e, l| e.union(&l.envelope()))
            }
            Geometry::Polygon(p) => p.envelope(),
            Geometry::MultiPolygon(ps) => {
                ps.iter().fold(Envelope::empty(), |e, p| e.union(&p.envelope()))
            }
        }
    }

    /// Representative centroid.
    ///
    /// Points: the point; multipoints and linestrings: vertex mean;
    /// polygons: area-weighted centroid. STARK assigns geometries to
    /// partitions by this centroid (paper §2.1).
    pub fn centroid(&self) -> Coord {
        match self {
            Geometry::Point(p) => *p.coord(),
            Geometry::MultiPoint(ps) => mean(ps.iter().map(|p| *p.coord())),
            Geometry::LineString(l) => mean(l.coords().iter().copied()),
            Geometry::MultiLineString(ls) => {
                mean(ls.iter().flat_map(|l| l.coords().iter().copied()))
            }
            Geometry::Polygon(p) => p.centroid(),
            Geometry::MultiPolygon(ps) => {
                // area-weighted combination of member centroids
                let total: f64 = ps.iter().map(Polygon::area).sum();
                if total < f64::EPSILON {
                    return mean(ps.iter().map(|p| p.centroid()));
                }
                let (cx, cy) = ps.iter().fold((0.0, 0.0), |(cx, cy), p| {
                    let c = p.centroid();
                    let a = p.area();
                    (cx + c.x * a, cy + c.y * a)
                });
                Coord::new(cx / total, cy / total)
            }
        }
    }

    /// Whether the closed point sets of `self` and `other` share a point.
    pub fn intersects(&self, other: &Geometry) -> bool {
        relate::intersects(self, other)
    }

    /// Whether every point of `other` lies in the closed region of `self`
    /// (covers semantics, see the type-level docs).
    pub fn contains(&self, other: &Geometry) -> bool {
        relate::covers(self, other)
    }

    /// Reverse of [`Geometry::contains`].
    pub fn contained_by(&self, other: &Geometry) -> bool {
        other.contains(self)
    }

    /// Minimum Euclidean distance between the closed point sets.
    pub fn distance(&self, other: &Geometry) -> f64 {
        relate::distance(self, other)
    }

    /// Whether the geometry is a (multi)point.
    pub fn is_point_like(&self) -> bool {
        matches!(self, Geometry::Point(_) | Geometry::MultiPoint(_))
    }

    /// Enclosed area: zero for points and lines, ring area minus holes
    /// for polygons, summed over multi-polygon members.
    pub fn area(&self) -> f64 {
        match self {
            Geometry::Point(_) | Geometry::MultiPoint(_) => 0.0,
            Geometry::LineString(_) | Geometry::MultiLineString(_) => 0.0,
            Geometry::Polygon(p) => p.area(),
            Geometry::MultiPolygon(ps) => ps.iter().map(Polygon::area).sum(),
        }
    }

    /// Total length: zero for points, path length for lines, boundary
    /// perimeter (all rings) for polygons.
    pub fn length(&self) -> f64 {
        match self {
            Geometry::Point(_) | Geometry::MultiPoint(_) => 0.0,
            Geometry::LineString(l) => l.length(),
            Geometry::MultiLineString(ls) => ls.iter().map(LineString::length).sum(),
            Geometry::Polygon(p) => p.rings().map(|r| r.perimeter()).sum(),
            Geometry::MultiPolygon(ps) => {
                ps.iter().flat_map(|p| p.rings()).map(|r| r.perimeter()).sum()
            }
        }
    }

    /// Total number of coordinates across all components.
    pub fn num_coords(&self) -> usize {
        match self {
            Geometry::Point(_) => 1,
            Geometry::MultiPoint(ps) => ps.len(),
            Geometry::LineString(l) => l.num_coords(),
            Geometry::MultiLineString(ls) => ls.iter().map(LineString::num_coords).sum(),
            Geometry::Polygon(p) => p.rings().map(|r| r.coords_closed().len()).sum(),
            Geometry::MultiPolygon(ps) => {
                ps.iter().flat_map(|p| p.rings()).map(|r| r.coords_closed().len()).sum()
            }
        }
    }
}

fn mean<I: IntoIterator<Item = Coord>>(coords: I) -> Coord {
    let mut n = 0usize;
    let mut sx = 0.0;
    let mut sy = 0.0;
    for c in coords {
        n += 1;
        sx += c.x;
        sy += c.y;
    }
    if n == 0 {
        Coord::new(f64::NAN, f64::NAN)
    } else {
        Coord::new(sx / n as f64, sy / n as f64)
    }
}

impl fmt::Display for Geometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_wkt())
    }
}

impl From<Point> for Geometry {
    fn from(p: Point) -> Self {
        Geometry::Point(p)
    }
}

impl From<LineString> for Geometry {
    fn from(l: LineString) -> Self {
        Geometry::LineString(l)
    }
}

impl From<Polygon> for Geometry {
    fn from(p: Polygon) -> Self {
        Geometry::Polygon(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_of_multipolygon_unions_members() {
        let g = Geometry::MultiPolygon(vec![
            match Geometry::rect(0.0, 0.0, 1.0, 1.0) {
                Geometry::Polygon(p) => p,
                _ => unreachable!(),
            },
            match Geometry::rect(5.0, 5.0, 6.0, 7.0) {
                Geometry::Polygon(p) => p,
                _ => unreachable!(),
            },
        ]);
        assert_eq!(g.envelope(), Envelope::from_bounds(0.0, 0.0, 6.0, 7.0));
    }

    #[test]
    fn centroid_of_rect() {
        let g = Geometry::rect(0.0, 0.0, 4.0, 2.0);
        assert!(g.centroid().approx_eq(&Coord::new(2.0, 1.0)));
    }

    #[test]
    fn centroid_of_point_is_itself() {
        assert!(Geometry::point(3.0, 4.0).centroid().approx_eq(&Coord::new(3.0, 4.0)));
    }

    #[test]
    fn num_coords() {
        assert_eq!(Geometry::point(0.0, 0.0).num_coords(), 1);
        assert_eq!(Geometry::rect(0.0, 0.0, 1.0, 1.0).num_coords(), 5);
    }

    #[test]
    fn area_and_length() {
        assert_eq!(Geometry::point(1.0, 2.0).area(), 0.0);
        assert_eq!(Geometry::point(1.0, 2.0).length(), 0.0);
        let rect = Geometry::rect(0.0, 0.0, 4.0, 3.0);
        assert_eq!(rect.area(), 12.0);
        assert_eq!(rect.length(), 14.0);
        let line = Geometry::from_wkt("LINESTRING(0 0, 3 4)").unwrap();
        assert_eq!(line.area(), 0.0);
        assert_eq!(line.length(), 5.0);
        let holed =
            Geometry::from_wkt("POLYGON((0 0, 10 0, 10 10, 0 10, 0 0), (1 1, 2 1, 2 2, 1 2, 1 1))")
                .unwrap();
        assert_eq!(holed.area(), 99.0);
        assert_eq!(holed.length(), 44.0);
    }

    #[test]
    fn contained_by_is_reverse_contains() {
        let big = Geometry::rect(0.0, 0.0, 10.0, 10.0);
        let p = Geometry::point(5.0, 5.0);
        assert!(p.contained_by(&big));
        assert!(big.contains(&p));
        assert!(!big.contained_by(&p));
    }
}
