//! Columnar predicate kernels over struct-of-arrays coordinate columns.
//!
//! The row-at-a-time predicates in [`algorithms::relate`](crate::algorithms)
//! dispatch on geometry kind per record; the hot filter paths of the
//! engine instead evaluate one predicate over *columns* of envelope and
//! centroid coordinates, keeping a [`SelectionBitmap`] of surviving
//! lanes. Each kernel consumes the bitmap and clears the lanes that fail
//! its test, so a chain of kernels evaluates filter→filter without
//! re-materialising rows in between.
//!
//! Soundness contract: every comparison here is *exact* (`<=` / `<` on
//! `f64`, no epsilon), mirroring the envelope short-circuits the row
//! predicates themselves perform first. A lane cleared by a coarse
//! kernel is a lane the row path would also reject; lanes the kernels
//! cannot decide stay set and must be refined row-at-a-time by the
//! caller. `NaN` coordinates fail every comparison, so callers must
//! route non-finite lanes around the coarse kernels (see the `finite`
//! bitmap kept by the engine's columnar batches).

use crate::coord::Coord;
use crate::distance::{haversine, EARTH_RADIUS_M};
use crate::envelope::Envelope;

/// A dense bitmap of selected row lanes, one bit per row.
///
/// Kernels treat a set bit as "still a candidate" and clear bits as
/// they rule lanes out; the bitmap is the only state flowing between
/// the stages of a fused columnar filter chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectionBitmap {
    words: Vec<u64>,
    len: usize,
}

impl SelectionBitmap {
    /// A bitmap of `len` lanes, all selected.
    pub fn all_set(len: usize) -> Self {
        let full_words = len / 64;
        let tail = len % 64;
        let mut words = vec![u64::MAX; full_words + usize::from(tail > 0)];
        if tail > 0 {
            words[full_words] = (1u64 << tail) - 1;
        }
        SelectionBitmap { words, len }
    }

    /// A bitmap of `len` lanes, none selected.
    pub fn none_set(len: usize) -> Self {
        SelectionBitmap { words: vec![0; len.div_ceil(64)], len }
    }

    /// Number of lanes (selected or not).
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether lane `i` is selected.
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Selects lane `i`.
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Deselects lane `i`.
    pub fn clear(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Number of selected lanes.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Intersects with another bitmap of the same length.
    pub fn and(&mut self, other: &SelectionBitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w &= o;
        }
    }

    /// Calls `f` with the index of every selected lane, ascending.
    pub fn for_each_set(&self, mut f: impl FnMut(usize)) {
        for (wi, &word) in self.words.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let bit = w.trailing_zeros() as usize;
                f(wi * 64 + bit);
                w &= w - 1;
            }
        }
    }

    /// Indices of the selected lanes, ascending.
    pub fn to_indices(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.count());
        self.for_each_set(|i| out.push(i));
        out
    }

    /// Clears every selected lane for which `keep` returns false. The
    /// word-at-a-time loop builds a branch-free mask per word, which is
    /// the shape the columnar kernels below rely on to auto-vectorise.
    pub fn retain(&mut self, mut keep: impl FnMut(usize) -> bool) {
        for (wi, word) in self.words.iter_mut().enumerate() {
            if *word == 0 {
                continue;
            }
            let base = wi * 64;
            let top = (self.len - base).min(64);
            let mut mask = 0u64;
            for b in 0..top {
                mask |= u64::from(keep(base + b)) << b;
            }
            *word &= mask;
        }
    }
}

/// Clears lanes whose envelope (`min/max` columns) does not intersect
/// `q`. Exact closed-interval comparisons, matching
/// [`Envelope::intersects`]; `q` must be non-empty. Lanes with `NaN`
/// envelope columns are cleared — route those around this kernel.
pub fn retain_env_intersects(
    sel: &mut SelectionBitmap,
    min_x: &[f64],
    min_y: &[f64],
    max_x: &[f64],
    max_y: &[f64],
    q: &Envelope,
) {
    debug_assert!(!q.is_empty());
    let (q_min_x, q_min_y, q_max_x, q_max_y) = (q.min_x(), q.min_y(), q.max_x(), q.max_y());
    sel.retain(|i| {
        min_x[i] <= q_max_x && q_min_x <= max_x[i] && min_y[i] <= q_max_y && q_min_y <= max_y[i]
    });
}

/// Clears lanes whose envelope is not fully inside `q` (the coarse test
/// for `containedBy`). Exact, matching [`Envelope::contains_envelope`].
pub fn retain_env_within(
    sel: &mut SelectionBitmap,
    min_x: &[f64],
    min_y: &[f64],
    max_x: &[f64],
    max_y: &[f64],
    q: &Envelope,
) {
    debug_assert!(!q.is_empty());
    let (q_min_x, q_min_y, q_max_x, q_max_y) = (q.min_x(), q.min_y(), q.max_x(), q.max_y());
    sel.retain(|i| {
        q_min_x <= min_x[i] && max_x[i] <= q_max_x && q_min_y <= min_y[i] && max_y[i] <= q_max_y
    });
}

/// Clears lanes whose envelope does not fully contain `q` (the coarse
/// test for `contains`). Exact, matching [`Envelope::contains_envelope`].
pub fn retain_env_contains(
    sel: &mut SelectionBitmap,
    min_x: &[f64],
    min_y: &[f64],
    max_x: &[f64],
    max_y: &[f64],
    q: &Envelope,
) {
    debug_assert!(!q.is_empty());
    let (q_min_x, q_min_y, q_max_x, q_max_y) = (q.min_x(), q.min_y(), q.max_x(), q.max_y());
    sel.retain(|i| {
        min_x[i] <= q_min_x && q_max_x <= max_x[i] && min_y[i] <= q_min_y && q_max_y <= max_y[i]
    });
}

/// Clears lanes whose centroid is farther than `max_dist` metres from
/// `q` under the Haversine formula. This is *exact*, not coarse: every
/// lane is decided identically to the row path
/// ([`DistanceFn::Haversine`](crate::DistanceFn) measures centroids),
/// `NaN` centroids included (`NaN <= d` is false on both paths).
///
/// Rather than evaluating the full formula per lane, the kernel works
/// in the space of the haversine parameter
/// `h = sin²(Δφ/2) + cosφ₁·cosφ₂·sin²(Δλ/2)`: the distance
/// `d(h) = 2R·asin(√h)` is monotone in `h`, so the cutoff
/// `d(h) <= max_dist` is located once by bisection *on the computed
/// function* and each lane then pays only the `h` arithmetic (with the
/// query-side `cos φ₂` hoisted) plus a comparison — no `sqrt`/`asin`.
/// Because libm's `asin` is only ulp-accurate (not proven monotone), a
/// `±1e-12` guard band around the located cutoff falls back to the
/// verbatim [`haversine`] formula, keeping the result bit-identical to
/// the row path for every input.
pub fn retain_haversine_within(
    sel: &mut SelectionBitmap,
    cx: &[f64],
    cy: &[f64],
    q: &Coord,
    max_dist: f64,
) {
    // Zero, negative and NaN cutoffs sit exactly on (or outside) the
    // h = 0 boundary where the band trick buys nothing; evaluate those
    // rare shapes verbatim.
    if max_dist.is_nan() || max_dist <= 0.0 || !q.is_finite() {
        sel.retain(|i| haversine(&Coord::new(cx[i], cy[i]), q) <= max_dist);
        return;
    }
    // Query-side terms, bit-identical to what `haversine` derives from
    // its second argument alone.
    let lat2 = q.y.to_radians();
    let cos_lat2 = lat2.cos();
    let d_of = |h: f64| 2.0 * EARTH_RADIUS_M * h.clamp(0.0, 1.0).sqrt().asin();
    let (h_lo, h_hi) = if d_of(1.0) <= max_dist {
        // cutoff beyond the antipode: every finite lane qualifies
        (f64::INFINITY, f64::INFINITY)
    } else {
        // bisect the crossing of the *computed* d(h); 80 halvings land
        // well below one ulp of h
        let (mut lo, mut hi) = (0.0f64, 1.0f64);
        for _ in 0..80 {
            let mid = 0.5 * (lo + hi);
            if d_of(mid) <= max_dist {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        // pad by far more than the ~1e-15 non-monotonicity window that
        // ulp-level asin error can induce around the crossing
        let pad = 1e-12 + 1e-12 * lo;
        (lo - pad, hi + pad)
    };
    sel.retain(|i| {
        let lat1 = cy[i].to_radians();
        let dlat = (q.y - cy[i]).to_radians();
        let dlon = (q.x - cx[i]).to_radians();
        let h = (dlat / 2.0).sin().powi(2) + lat1.cos() * cos_lat2 * (dlon / 2.0).sin().powi(2);
        let hc = h.clamp(0.0, 1.0);
        if hc <= h_lo {
            true
        } else if hc >= h_hi {
            false
        } else {
            // inside the guard band (or NaN): decide with the verbatim
            // row formula
            haversine(&Coord::new(cx[i], cy[i]), q) <= max_dist
        }
    });
}

/// Clears lanes whose centroid Manhattan distance to `q` exceeds
/// `max_dist`. Exact for the same reason as the Haversine kernel:
/// [`DistanceFn::Manhattan`](crate::DistanceFn) measures centroids with
/// this very expression.
pub fn retain_manhattan_within(
    sel: &mut SelectionBitmap,
    cx: &[f64],
    cy: &[f64],
    q: &Coord,
    max_dist: f64,
) {
    sel.retain(|i| (cx[i] - q.x).abs() + (cy[i] - q.y).abs() <= max_dist);
}

/// Coarse Euclidean prune: clears lanes whose envelope axis-gap lower
/// bound to `q_env` *provably* exceeds `limit`. The caller must pass a
/// `limit` padded above the true cutoff (the row path measures exact
/// geometry distance with `sqrt(dx²+dy²)`, this bound uses the same
/// gaps but different rounding), and must refine every surviving lane.
/// `NaN` gaps never exceed `limit`, so non-finite lanes survive to the
/// refinement step.
pub fn retain_euclidean_gap(
    sel: &mut SelectionBitmap,
    min_x: &[f64],
    min_y: &[f64],
    max_x: &[f64],
    max_y: &[f64],
    q_env: &Envelope,
    limit: f64,
) {
    debug_assert!(!q_env.is_empty());
    let (q_min_x, q_min_y, q_max_x, q_max_y) =
        (q_env.min_x(), q_env.min_y(), q_env.max_x(), q_env.max_y());
    sel.retain(|i| {
        let dx = (min_x[i] - q_max_x).max(q_min_x - max_x[i]).max(0.0);
        let dy = (min_y[i] - q_max_y).max(q_min_y - max_y[i]).max(0.0);
        // NaN gaps must survive to refinement, hence not plain `d <= limit`
        let d = dx.hypot(dy);
        d.is_nan() || d <= limit
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmap_basics() {
        let mut s = SelectionBitmap::all_set(70);
        assert_eq!(s.len(), 70);
        assert_eq!(s.count(), 70);
        assert!(s.get(69));
        s.clear(69);
        s.clear(0);
        assert_eq!(s.count(), 68);
        assert!(!s.get(0));
        s.set(0);
        assert!(s.get(0));
        assert_eq!(SelectionBitmap::none_set(70).count(), 0);
        assert_eq!(SelectionBitmap::all_set(0).count(), 0);
        assert_eq!(SelectionBitmap::all_set(64).count(), 64);
    }

    #[test]
    fn bitmap_retain_and_iterate() {
        let mut s = SelectionBitmap::all_set(130);
        s.retain(|i| i % 3 == 0);
        let idx = s.to_indices();
        assert!(idx.iter().all(|i| i % 3 == 0));
        assert_eq!(idx.len(), s.count());
        assert_eq!(idx.len(), (0..130).filter(|i| i % 3 == 0).count());

        let mut other = SelectionBitmap::all_set(130);
        other.retain(|i| i % 2 == 0);
        s.and(&other);
        assert!(s.to_indices().iter().all(|i| i % 6 == 0));
    }

    #[test]
    fn retain_only_touches_set_lanes() {
        let mut s = SelectionBitmap::none_set(64);
        s.set(7);
        // retain predicate true everywhere must not resurrect cleared lanes
        s.retain(|_| true);
        assert_eq!(s.to_indices(), vec![7]);
    }

    #[test]
    fn envelope_kernels_match_envelope_methods() {
        let rows = [
            Envelope::from_bounds(0.0, 0.0, 1.0, 1.0),
            Envelope::from_bounds(5.0, 5.0, 6.0, 6.0),
            Envelope::from_bounds(2.0, 2.0, 9.0, 9.0),
            Envelope::from_bounds(4.0, 4.0, 4.5, 4.5),
        ];
        let min_x: Vec<f64> = rows.iter().map(|e| e.min_x()).collect();
        let min_y: Vec<f64> = rows.iter().map(|e| e.min_y()).collect();
        let max_x: Vec<f64> = rows.iter().map(|e| e.max_x()).collect();
        let max_y: Vec<f64> = rows.iter().map(|e| e.max_y()).collect();
        let q = Envelope::from_bounds(3.0, 3.0, 7.0, 7.0);

        let mut s = SelectionBitmap::all_set(rows.len());
        retain_env_intersects(&mut s, &min_x, &min_y, &max_x, &max_y, &q);
        for (i, e) in rows.iter().enumerate() {
            assert_eq!(s.get(i), e.intersects(&q), "intersects lane {i}");
        }

        let mut s = SelectionBitmap::all_set(rows.len());
        retain_env_within(&mut s, &min_x, &min_y, &max_x, &max_y, &q);
        for (i, e) in rows.iter().enumerate() {
            assert_eq!(s.get(i), q.contains_envelope(e), "within lane {i}");
        }

        let mut s = SelectionBitmap::all_set(rows.len());
        retain_env_contains(&mut s, &min_x, &min_y, &max_x, &max_y, &q);
        for (i, e) in rows.iter().enumerate() {
            assert_eq!(s.get(i), e.contains_envelope(&q), "contains lane {i}");
        }
    }

    #[test]
    fn haversine_kernel_matches_scalar_and_handles_nan() {
        let cx = [13.4, 2.35, f64::NAN];
        let cy = [52.5, 48.85, 1.0];
        let q = Coord::new(2.35, 48.85);
        let mut s = SelectionBitmap::all_set(3);
        retain_haversine_within(&mut s, &cx, &cy, &q, 1_000_000.0);
        // the kernel is the same arithmetic as the scalar helper
        let d = haversine(&Coord::new(13.4, 52.5), &q);
        assert_eq!(s.get(0), d <= 1_000_000.0);
        assert!(s.get(0), "Berlin–Paris is ~880 km, within 1000 km");
        assert!(s.get(1), "zero distance survives");
        assert!(!s.get(2), "NaN centroid must fail the kernel, like the row path");
    }

    #[test]
    fn euclidean_gap_never_prunes_reachable_or_nan_lanes() {
        let min_x = [0.0, 100.0, f64::NAN];
        let min_y = [0.0, 100.0, f64::NAN];
        let max_x = [1.0, 101.0, f64::NAN];
        let max_y = [1.0, 101.0, f64::NAN];
        let q = Envelope::from_bounds(2.0, 0.0, 3.0, 1.0);
        let mut s = SelectionBitmap::all_set(3);
        retain_euclidean_gap(&mut s, &min_x, &min_y, &max_x, &max_y, &q, 5.0);
        assert!(s.get(0), "gap 1.0 <= 5.0 survives");
        assert!(!s.get(1), "gap ~97 is provably beyond the limit");
        assert!(s.get(2), "NaN lanes must survive coarse pruning for refinement");
    }
}
