//! The point geometry.

use crate::coord::Coord;
use crate::envelope::Envelope;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A single location in the plane.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point(pub Coord);

impl Point {
    /// Creates a point from its two components.
    pub const fn new(x: f64, y: f64) -> Self {
        Point(Coord::new(x, y))
    }

    /// The underlying coordinate.
    #[inline]
    pub fn coord(&self) -> &Coord {
        &self.0
    }

    #[inline]
    pub fn x(&self) -> f64 {
        self.0.x
    }

    #[inline]
    pub fn y(&self) -> f64 {
        self.0.y
    }

    /// Degenerate envelope covering only this point.
    pub fn envelope(&self) -> Envelope {
        Envelope::from_point(self.0)
    }
}

impl From<Coord> for Point {
    fn from(c: Coord) -> Self {
        Point(c)
    }
}

impl From<(f64, f64)> for Point {
    fn from(t: (f64, f64)) -> Self {
        Point(t.into())
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "POINT ({})", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let p = Point::new(1.0, -2.0);
        assert_eq!(p.x(), 1.0);
        assert_eq!(p.y(), -2.0);
        assert_eq!(*p.coord(), Coord::new(1.0, -2.0));
    }

    #[test]
    fn envelope_is_degenerate() {
        let e = Point::new(3.0, 4.0).envelope();
        assert_eq!(e.area(), 0.0);
        assert!(e.contains_coord(&Coord::new(3.0, 4.0)));
        assert!(!e.contains_coord(&Coord::new(3.0, 4.1)));
    }

    #[test]
    fn display_is_wkt() {
        assert_eq!(Point::new(1.0, 2.0).to_string(), "POINT (1 2)");
    }
}
