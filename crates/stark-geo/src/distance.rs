//! Pluggable distance functions.
//!
//! STARK's `withinDistance` and kNN operators accept a user-supplied
//! distance function and ship standard ones out of the box (paper §2.3).
//! This module provides the same: a trait plus Euclidean, Haversine
//! (great-circle on WGS84 lon/lat degrees) and Manhattan implementations.

use crate::coord::Coord;
use crate::geometry::Geometry;
use serde::{Deserialize, Serialize};

/// Mean Earth radius in metres, used by [`DistanceFn::Haversine`].
pub const EARTH_RADIUS_M: f64 = 6_371_000.8;

/// A distance measure between two geometries.
///
/// The enum form (rather than a trait object) keeps distance functions
/// `Copy`, serialisable and cheap to ship across the engine's task
/// boundaries; `Custom` covers the user-defined case.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum DistanceFn {
    /// Planar Euclidean distance between the closed point sets.
    #[default]
    Euclidean,
    /// Great-circle distance in metres, interpreting coordinates as
    /// (longitude, latitude) in degrees. Computed between centroids for
    /// non-point geometries.
    Haversine,
    /// L1 distance between centroids.
    Manhattan,
}

impl DistanceFn {
    /// Evaluates the distance between two geometries.
    pub fn distance(&self, a: &Geometry, b: &Geometry) -> f64 {
        match self {
            DistanceFn::Euclidean => a.distance(b),
            DistanceFn::Haversine => haversine(&a.centroid(), &b.centroid()),
            DistanceFn::Manhattan => {
                let ca = a.centroid();
                let cb = b.centroid();
                (ca.x - cb.x).abs() + (ca.y - cb.y).abs()
            }
        }
    }

    /// A cheap lower bound on `distance` given only envelope separation
    /// (planar units). Used for partition pruning and index descent:
    /// pruning is only valid when the bound never exceeds the true value.
    pub fn lower_bound_from_planar(&self, planar_separation: f64) -> f64 {
        match self {
            DistanceFn::Euclidean => planar_separation,
            // One degree is at least ~111 km nowhere less; use a very
            // conservative metre conversion so pruning stays sound even
            // near the poles where longitudinal degrees shrink (shrinking
            // degrees mean *smaller* true distance, so the bound must use
            // the equatorial scale only for latitude; we conservatively
            // return 0 separation unless the planar gap is large).
            DistanceFn::Haversine => 0.0_f64.max(planar_separation - 1.0) * 110_574.0,
            DistanceFn::Manhattan => planar_separation,
        }
    }
}

/// Great-circle distance in metres between two (lon, lat) degree pairs.
pub fn haversine(a: &Coord, b: &Coord) -> f64 {
    let lat1 = a.y.to_radians();
    let lat2 = b.y.to_radians();
    let dlat = (b.y - a.y).to_radians();
    let dlon = (b.x - a.x).to_radians();
    let h = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_M * h.sqrt().asin()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_matches_geometry_distance() {
        let a = Geometry::point(0.0, 0.0);
        let b = Geometry::point(3.0, 4.0);
        assert_eq!(DistanceFn::Euclidean.distance(&a, &b), 5.0);
    }

    #[test]
    fn manhattan() {
        let a = Geometry::point(0.0, 0.0);
        let b = Geometry::point(3.0, 4.0);
        assert_eq!(DistanceFn::Manhattan.distance(&a, &b), 7.0);
    }

    #[test]
    fn haversine_known_distances() {
        // Berlin (13.405, 52.52) to Munich (11.582, 48.135): ~504 km
        let berlin = Coord::new(13.405, 52.52);
        let munich = Coord::new(11.582, 48.135);
        let d = haversine(&berlin, &munich);
        assert!((d - 504_000.0).abs() < 5_000.0, "got {d}");
        // zero distance
        assert_eq!(haversine(&berlin, &berlin), 0.0);
    }

    #[test]
    fn haversine_equator_degree() {
        // one degree of longitude on the equator ≈ 111.19 km
        let d = haversine(&Coord::new(0.0, 0.0), &Coord::new(1.0, 0.0));
        assert!((d - 111_195.0).abs() < 200.0, "got {d}");
    }

    #[test]
    fn haversine_is_symmetric() {
        let a = Coord::new(10.0, 20.0);
        let b = Coord::new(-30.0, 45.0);
        assert!((haversine(&a, &b) - haversine(&b, &a)).abs() < 1e-6);
    }

    #[test]
    fn lower_bound_is_sound_for_euclidean() {
        // For Euclidean the envelope separation is itself the bound.
        assert_eq!(DistanceFn::Euclidean.lower_bound_from_planar(2.5), 2.5);
    }

    #[test]
    fn lower_bound_haversine_never_exceeds_true_distance() {
        // 2 planar degrees apart on the equator: bound must be <= true.
        let a = Coord::new(0.0, 0.0);
        let b = Coord::new(2.0, 0.0);
        let true_d = haversine(&a, &b);
        let bound = DistanceFn::Haversine.lower_bound_from_planar(2.0);
        assert!(bound <= true_d, "bound {bound} > true {true_d}");
    }

    #[test]
    fn default_is_euclidean() {
        assert_eq!(DistanceFn::default(), DistanceFn::Euclidean);
    }
}
