//! Pluggable distance functions.
//!
//! STARK's `withinDistance` and kNN operators accept a user-supplied
//! distance function and ship standard ones out of the box (paper §2.3).
//! This module provides the same: a trait plus Euclidean, Haversine
//! (great-circle on WGS84 lon/lat degrees) and Manhattan implementations.

use crate::coord::Coord;
use crate::geometry::Geometry;
use serde::{Deserialize, Serialize};

/// IUGG mean Earth radius in metres, used by [`DistanceFn::Haversine`].
pub const EARTH_RADIUS_M: f64 = 6_371_008.8;

/// A distance measure between two geometries.
///
/// The enum form (rather than a trait object) keeps distance functions
/// `Copy`, serialisable and cheap to ship across the engine's task
/// boundaries; `Custom` covers the user-defined case.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum DistanceFn {
    /// Planar Euclidean distance between the closed point sets.
    #[default]
    Euclidean,
    /// Great-circle distance in metres, interpreting coordinates as
    /// (longitude, latitude) in degrees. Computed between centroids for
    /// non-point geometries.
    Haversine,
    /// L1 distance between centroids.
    Manhattan,
}

impl DistanceFn {
    /// Evaluates the distance between two geometries.
    pub fn distance(&self, a: &Geometry, b: &Geometry) -> f64 {
        match self {
            DistanceFn::Euclidean => a.distance(b),
            DistanceFn::Haversine => haversine(&a.centroid(), &b.centroid()),
            DistanceFn::Manhattan => {
                let ca = a.centroid();
                let cb = b.centroid();
                (ca.x - cb.x).abs() + (ca.y - cb.y).abs()
            }
        }
    }

    /// A cheap lower bound on `distance` given the per-axis envelope
    /// gaps `(dx, dy)` in planar units (degrees for Haversine). Used for
    /// partition pruning and index descent: pruning is only valid when
    /// the bound never exceeds the true distance between any pair of
    /// points separated by at least these gaps.
    ///
    /// For Haversine only the latitude gap is credited: a degree of
    /// latitude is a constant arc everywhere, while a degree of
    /// longitude shrinks to zero toward the poles, so any conversion of
    /// a longitudinal gap into metres would overshoot near the poles
    /// and prune partitions that still hold matches.
    pub fn lower_bound_from_axis_gaps(&self, dx: f64, dy: f64) -> f64 {
        let dx = dx.max(0.0);
        let dy = dy.max(0.0);
        match self {
            DistanceFn::Euclidean => dx.hypot(dy),
            // Great-circle distance is R times the central angle, and
            // the central angle is at least the latitude difference, so
            // R * |Δlat| in radians never exceeds the true distance.
            DistanceFn::Haversine => dy.to_radians() * EARTH_RADIUS_M,
            DistanceFn::Manhattan => dx + dy,
        }
    }
}

/// Great-circle distance in metres between two (lon, lat) degree pairs.
pub fn haversine(a: &Coord, b: &Coord) -> f64 {
    let lat1 = a.y.to_radians();
    let lat2 = b.y.to_radians();
    let dlat = (b.y - a.y).to_radians();
    let dlon = (b.x - a.x).to_radians();
    let h = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    // Float error can push h a hair outside [0, 1] for (near-)antipodal
    // points, where sqrt/asin would return NaN; clamp so those pairs
    // report ~πR instead.
    2.0 * EARTH_RADIUS_M * h.clamp(0.0, 1.0).sqrt().asin()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_matches_geometry_distance() {
        let a = Geometry::point(0.0, 0.0);
        let b = Geometry::point(3.0, 4.0);
        assert_eq!(DistanceFn::Euclidean.distance(&a, &b), 5.0);
    }

    #[test]
    fn manhattan() {
        let a = Geometry::point(0.0, 0.0);
        let b = Geometry::point(3.0, 4.0);
        assert_eq!(DistanceFn::Manhattan.distance(&a, &b), 7.0);
    }

    #[test]
    fn haversine_known_distances() {
        // Berlin (13.405, 52.52) to Munich (11.582, 48.135): ~504.4 km
        let berlin = Coord::new(13.405, 52.52);
        let munich = Coord::new(11.582, 48.135);
        let d = haversine(&berlin, &munich);
        assert!((d - 504_400.0).abs() < 1_500.0, "got {d}");
        // zero distance
        assert_eq!(haversine(&berlin, &berlin), 0.0);
    }

    #[test]
    fn haversine_equator_degree() {
        // one degree of longitude on the equator: πR/180 ≈ 111.195 km
        let d = haversine(&Coord::new(0.0, 0.0), &Coord::new(1.0, 0.0));
        let expected = std::f64::consts::PI * EARTH_RADIUS_M / 180.0;
        assert!((d - expected).abs() < 1e-6, "got {d}, want {expected}");
    }

    #[test]
    fn haversine_antipodal_is_half_circumference() {
        let d = haversine(&Coord::new(0.0, 0.0), &Coord::new(180.0, 0.0));
        let half = std::f64::consts::PI * EARTH_RADIUS_M;
        assert!((d - half).abs() < 1.0, "got {d}, want {half}");
    }

    #[test]
    fn haversine_near_antipodal_is_finite() {
        // Without clamping, float error pushes h a hair above 1 for
        // pairs like these and sqrt().asin() returns NaN.
        let half = std::f64::consts::PI * EARTH_RADIUS_M;
        let pairs = [
            (Coord::new(12.3456789, 45.0000001), Coord::new(12.3456789 - 180.0, -45.0)),
            (Coord::new(-77.0371, 38.8895), Coord::new(102.9629, -38.8895)),
            (Coord::new(0.0, 89.9999999), Coord::new(179.9999999, -89.9999999)),
        ];
        for (a, b) in pairs {
            let d = haversine(&a, &b);
            assert!(d.is_finite(), "near-antipodal {a:?}/{b:?} gave {d}");
            assert!(d <= half + 1e-6 && d > half - 100.0, "got {d}, want ~{half}");
        }
    }

    #[test]
    fn haversine_is_symmetric() {
        let a = Coord::new(10.0, 20.0);
        let b = Coord::new(-30.0, 45.0);
        assert!((haversine(&a, &b) - haversine(&b, &a)).abs() < 1e-6);
    }

    #[test]
    fn lower_bound_is_sound_for_euclidean() {
        // For Euclidean the bound is the norm of the axis gaps.
        assert_eq!(DistanceFn::Euclidean.lower_bound_from_axis_gaps(3.0, 4.0), 5.0);
    }

    #[test]
    fn lower_bound_manhattan_sums_axes() {
        assert_eq!(DistanceFn::Manhattan.lower_bound_from_axis_gaps(3.0, 4.0), 7.0);
    }

    #[test]
    fn lower_bound_haversine_never_exceeds_true_distance() {
        // 2 degrees of longitude apart on the equator.
        let a = Coord::new(0.0, 0.0);
        let b = Coord::new(2.0, 0.0);
        let true_d = haversine(&a, &b);
        let bound = DistanceFn::Haversine.lower_bound_from_axis_gaps(2.0, 0.0);
        assert!(bound <= true_d, "bound {bound} > true {true_d}");
    }

    #[test]
    fn lower_bound_haversine_ignores_longitude_near_poles() {
        // 10 degrees of longitude at 87°N is only ~58 km. The old
        // equatorial-scale conversion claimed ~995 km and unsoundly
        // pruned partitions that still held matches.
        let a = Coord::new(0.0, 87.0);
        let b = Coord::new(10.0, 87.0);
        let true_d = haversine(&a, &b);
        let bound = DistanceFn::Haversine.lower_bound_from_axis_gaps(10.0, 0.0);
        assert_eq!(bound, 0.0);
        assert!(true_d < 70_000.0, "sanity: high-latitude arc is short, got {true_d}");
    }

    #[test]
    fn lower_bound_haversine_credits_latitude_tightly() {
        // Same longitude: great-circle distance is exactly R·Δlat, so
        // the latitude-only bound should be tight there.
        let a = Coord::new(5.0, 10.0);
        let b = Coord::new(5.0, 12.0);
        let true_d = haversine(&a, &b);
        let bound = DistanceFn::Haversine.lower_bound_from_axis_gaps(0.0, 2.0);
        assert!(bound <= true_d + 1e-6, "bound {bound} > true {true_d}");
        assert!(bound > 0.999 * true_d, "bound {bound} not tight vs {true_d}");
    }

    #[test]
    fn lower_bound_clamps_negative_gaps() {
        assert_eq!(DistanceFn::Euclidean.lower_bound_from_axis_gaps(-1.0, -2.0), 0.0);
        assert_eq!(DistanceFn::Haversine.lower_bound_from_axis_gaps(-1.0, -2.0), 0.0);
    }

    #[test]
    fn default_is_euclidean() {
        assert_eq!(DistanceFn::default(), DistanceFn::Euclidean);
    }
}
