//! Axis-aligned bounding rectangles (minimum bounding rectangles, MBRs).
//!
//! Envelopes are the workhorse of partition bounds, partition *extents*
//! (STARK's overlap-tracking mechanism, paper §2.1) and R-tree nodes.

use crate::coord::Coord;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An axis-aligned rectangle, possibly empty.
///
/// The empty envelope is the identity for [`Envelope::expand_to_include`]
/// and unions; it intersects nothing and contains nothing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Envelope {
    min_x: f64,
    min_y: f64,
    max_x: f64,
    max_y: f64,
}

impl Envelope {
    /// Creates an envelope spanning the two corner points in either order.
    pub fn new(a: Coord, b: Coord) -> Self {
        Envelope {
            min_x: a.x.min(b.x),
            min_y: a.y.min(b.y),
            max_x: a.x.max(b.x),
            max_y: a.y.max(b.y),
        }
    }

    /// Creates an envelope from explicit bounds. `min_*` must not exceed
    /// `max_*`; use [`Envelope::new`] when the ordering is unknown.
    pub fn from_bounds(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Self {
        debug_assert!(min_x <= max_x && min_y <= max_y, "inverted envelope bounds");
        Envelope { min_x, min_y, max_x, max_y }
    }

    /// Const constructor from explicit bounds; callers must pass
    /// `min_* <= max_*` (not checkable in const position).
    pub const fn const_new(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Self {
        Envelope { min_x, min_y, max_x, max_y }
    }

    /// The empty envelope — identity for union operations.
    pub fn empty() -> Self {
        Envelope {
            min_x: f64::INFINITY,
            min_y: f64::INFINITY,
            max_x: f64::NEG_INFINITY,
            max_y: f64::NEG_INFINITY,
        }
    }

    /// An envelope degenerated to a single point.
    pub fn from_point(c: Coord) -> Self {
        Envelope { min_x: c.x, min_y: c.y, max_x: c.x, max_y: c.y }
    }

    /// Tightest envelope around a set of coordinates.
    pub fn from_coords<'a, I: IntoIterator<Item = &'a Coord>>(coords: I) -> Self {
        let mut env = Envelope::empty();
        for c in coords {
            env.expand_to_include(c);
        }
        env
    }

    /// Whether this envelope contains no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min_x > self.max_x || self.min_y > self.max_y
    }

    #[inline]
    pub fn min_x(&self) -> f64 {
        self.min_x
    }
    #[inline]
    pub fn min_y(&self) -> f64 {
        self.min_y
    }
    #[inline]
    pub fn max_x(&self) -> f64 {
        self.max_x
    }
    #[inline]
    pub fn max_y(&self) -> f64 {
        self.max_y
    }

    /// Width along the x axis; zero for empty envelopes.
    #[inline]
    pub fn width(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.max_x - self.min_x
        }
    }

    /// Height along the y axis; zero for empty envelopes.
    #[inline]
    pub fn height(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.max_y - self.min_y
        }
    }

    /// Area; zero for empty and degenerate envelopes.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Geometric center. Meaningless (NaN components) for empty envelopes.
    #[inline]
    pub fn center(&self) -> Coord {
        Coord::new((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)
    }

    /// Grows the envelope in place so it covers `c`.
    #[inline]
    pub fn expand_to_include(&mut self, c: &Coord) {
        self.min_x = self.min_x.min(c.x);
        self.min_y = self.min_y.min(c.y);
        self.max_x = self.max_x.max(c.x);
        self.max_y = self.max_y.max(c.y);
    }

    /// Grows the envelope in place so it covers `other` entirely.
    #[inline]
    pub fn expand_to_include_envelope(&mut self, other: &Envelope) {
        if other.is_empty() {
            return;
        }
        self.min_x = self.min_x.min(other.min_x);
        self.min_y = self.min_y.min(other.min_y);
        self.max_x = self.max_x.max(other.max_x);
        self.max_y = self.max_y.max(other.max_y);
    }

    /// Returns a copy grown to cover `other`.
    pub fn union(&self, other: &Envelope) -> Envelope {
        let mut e = *self;
        e.expand_to_include_envelope(other);
        e
    }

    /// Returns a copy grown by `margin` on every side. Used for the
    /// ε-neighbourhood replication step of distributed DBSCAN.
    pub fn buffered(&self, margin: f64) -> Envelope {
        if self.is_empty() {
            return *self;
        }
        Envelope {
            min_x: self.min_x - margin,
            min_y: self.min_y - margin,
            max_x: self.max_x + margin,
            max_y: self.max_y + margin,
        }
    }

    /// Whether the closed rectangles share at least one point.
    #[inline]
    pub fn intersects(&self, other: &Envelope) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.min_x <= other.max_x
            && other.min_x <= self.max_x
            && self.min_y <= other.max_y
            && other.min_y <= self.max_y
    }

    /// The overlapping rectangle of the two envelopes, if any.
    pub fn intersection(&self, other: &Envelope) -> Option<Envelope> {
        if !self.intersects(other) {
            return None;
        }
        Some(Envelope {
            min_x: self.min_x.max(other.min_x),
            min_y: self.min_y.max(other.min_y),
            max_x: self.max_x.min(other.max_x),
            max_y: self.max_y.min(other.max_y),
        })
    }

    /// Whether `c` lies inside or on the boundary of the rectangle.
    #[inline]
    pub fn contains_coord(&self, c: &Coord) -> bool {
        c.x >= self.min_x && c.x <= self.max_x && c.y >= self.min_y && c.y <= self.max_y
    }

    /// Whether `other` lies entirely inside this rectangle (closed sense).
    #[inline]
    pub fn contains_envelope(&self, other: &Envelope) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && other.min_x >= self.min_x
            && other.max_x <= self.max_x
            && other.min_y >= self.min_y
            && other.max_y <= self.max_y
    }

    /// Per-axis separations `(dx, dy)` between the two closed
    /// rectangles. An axis whose projections overlap contributes zero;
    /// both components are zero when the rectangles intersect, and both
    /// are infinite when either rectangle is empty. [`Envelope::distance`]
    /// is the Euclidean norm of this pair; distance functions whose axes
    /// are not interchangeable (e.g. Haversine on lon/lat degrees) need
    /// the per-axis form to build a sound lower bound.
    pub fn axis_distances(&self, other: &Envelope) -> (f64, f64) {
        if self.is_empty() || other.is_empty() {
            return (f64::INFINITY, f64::INFINITY);
        }
        let dx = (self.min_x - other.max_x).max(other.min_x - self.max_x).max(0.0);
        let dy = (self.min_y - other.max_y).max(other.min_y - self.max_y).max(0.0);
        (dx, dy)
    }

    /// Minimum Euclidean distance between the two closed rectangles;
    /// zero when they intersect, infinite when either is empty.
    pub fn distance(&self, other: &Envelope) -> f64 {
        let (dx, dy) = self.axis_distances(other);
        dx.hypot(dy)
    }

    /// Minimum Euclidean distance from the rectangle to a coordinate;
    /// zero when the coordinate lies inside.
    pub fn distance_to_coord(&self, c: &Coord) -> f64 {
        if self.is_empty() {
            return f64::INFINITY;
        }
        let dx = (self.min_x - c.x).max(0.0).max(c.x - self.max_x);
        let dy = (self.min_y - c.y).max(0.0).max(c.y - self.max_y);
        (dx * dx + dy * dy).sqrt()
    }

    /// The four corner coordinates in counter-clockwise order starting at
    /// the minimum corner. Empty envelopes yield an empty vector.
    pub fn corners(&self) -> Vec<Coord> {
        if self.is_empty() {
            return Vec::new();
        }
        vec![
            Coord::new(self.min_x, self.min_y),
            Coord::new(self.max_x, self.min_y),
            Coord::new(self.max_x, self.max_y),
            Coord::new(self.min_x, self.max_y),
        ]
    }
}

impl Default for Envelope {
    fn default() -> Self {
        Envelope::empty()
    }
}

impl fmt::Display for Envelope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            write!(f, "ENV EMPTY")
        } else {
            write!(f, "ENV({} {}, {} {})", self.min_x, self.min_y, self.max_x, self.max_y)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(a: f64, b: f64, c: f64, d: f64) -> Envelope {
        Envelope::from_bounds(a, b, c, d)
    }

    #[test]
    fn empty_is_identity_for_union() {
        let e = env(0.0, 0.0, 2.0, 3.0);
        assert_eq!(Envelope::empty().union(&e), e);
        assert_eq!(e.union(&Envelope::empty()), e);
        assert!(Envelope::empty().is_empty());
    }

    #[test]
    fn new_normalizes_corner_order() {
        let e = Envelope::new(Coord::new(2.0, 3.0), Coord::new(0.0, 1.0));
        assert_eq!(e, env(0.0, 1.0, 2.0, 3.0));
    }

    #[test]
    fn intersects_and_intersection() {
        let a = env(0.0, 0.0, 2.0, 2.0);
        let b = env(1.0, 1.0, 3.0, 3.0);
        let c = env(5.0, 5.0, 6.0, 6.0);
        assert!(a.intersects(&b));
        assert_eq!(a.intersection(&b), Some(env(1.0, 1.0, 2.0, 2.0)));
        assert!(!a.intersects(&c));
        assert_eq!(a.intersection(&c), None);
    }

    #[test]
    fn touching_edges_intersect() {
        let a = env(0.0, 0.0, 1.0, 1.0);
        let b = env(1.0, 0.0, 2.0, 1.0);
        assert!(a.intersects(&b));
        let i = a.intersection(&b).unwrap();
        assert_eq!(i.area(), 0.0);
    }

    #[test]
    fn empty_never_intersects() {
        let a = env(0.0, 0.0, 1.0, 1.0);
        assert!(!a.intersects(&Envelope::empty()));
        assert!(!Envelope::empty().intersects(&a));
        assert!(!Envelope::empty().intersects(&Envelope::empty()));
    }

    #[test]
    fn containment() {
        let outer = env(0.0, 0.0, 10.0, 10.0);
        let inner = env(2.0, 2.0, 3.0, 3.0);
        assert!(outer.contains_envelope(&inner));
        assert!(!inner.contains_envelope(&outer));
        assert!(outer.contains_envelope(&outer));
        assert!(outer.contains_coord(&Coord::new(0.0, 0.0)));
        assert!(outer.contains_coord(&Coord::new(10.0, 10.0)));
        assert!(!outer.contains_coord(&Coord::new(10.1, 5.0)));
    }

    #[test]
    fn distances() {
        let a = env(0.0, 0.0, 1.0, 1.0);
        let b = env(4.0, 5.0, 6.0, 7.0);
        assert_eq!(a.distance(&b), 5.0); // dx=3, dy=4
        assert_eq!(a.distance(&a), 0.0);
        assert_eq!(a.distance_to_coord(&Coord::new(0.5, 0.5)), 0.0);
        assert_eq!(a.distance_to_coord(&Coord::new(4.0, 5.0)), 5.0);
    }

    #[test]
    fn axis_distances_per_axis() {
        let a = env(0.0, 0.0, 1.0, 1.0);
        let b = env(4.0, 5.0, 6.0, 7.0);
        assert_eq!(a.axis_distances(&b), (3.0, 4.0));
        assert_eq!(b.axis_distances(&a), (3.0, 4.0));
        // overlap on x only
        let c = env(0.5, 3.0, 2.0, 4.0);
        assert_eq!(a.axis_distances(&c), (0.0, 2.0));
        // full overlap
        assert_eq!(a.axis_distances(&a), (0.0, 0.0));
        // empty envelopes are infinitely far on both axes
        assert_eq!(a.axis_distances(&Envelope::empty()), (f64::INFINITY, f64::INFINITY));
        assert!(a.distance(&Envelope::empty()).is_infinite());
    }

    #[test]
    fn buffered_grows_every_side() {
        let a = env(0.0, 0.0, 1.0, 1.0).buffered(0.5);
        assert_eq!(a, env(-0.5, -0.5, 1.5, 1.5));
        assert!(Envelope::empty().buffered(1.0).is_empty());
    }

    #[test]
    fn from_coords_covers_all() {
        let pts = [Coord::new(1.0, 5.0), Coord::new(-2.0, 0.0), Coord::new(3.0, 2.0)];
        let e = Envelope::from_coords(pts.iter());
        assert_eq!(e, env(-2.0, 0.0, 3.0, 5.0));
        for p in &pts {
            assert!(e.contains_coord(p));
        }
    }

    #[test]
    fn corners_ccw() {
        let e = env(0.0, 0.0, 2.0, 1.0);
        let c = e.corners();
        assert_eq!(c.len(), 4);
        assert_eq!(c[0], Coord::new(0.0, 0.0));
        assert_eq!(c[2], Coord::new(2.0, 1.0));
    }

    #[test]
    fn center_and_dims() {
        let e = env(0.0, 0.0, 4.0, 2.0);
        assert_eq!(e.center(), Coord::new(2.0, 1.0));
        assert_eq!(e.width(), 4.0);
        assert_eq!(e.height(), 2.0);
        assert_eq!(e.area(), 8.0);
    }
}
