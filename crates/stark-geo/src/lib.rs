//! # stark-geo — planar geometry kernel
//!
//! This crate is the reproduction's substitute for the JTS topology suite
//! the STARK paper relies on (paper §2.2). It provides:
//!
//! * geometry types: [`Point`], [`LineString`], [`Polygon`] (with holes)
//!   and their `Multi*` variants under the [`Geometry`] sum type;
//! * [`Envelope`] minimum bounding rectangles;
//! * WKT parsing and writing ([`Geometry::from_wkt`] / [`Geometry::to_wkt`]);
//! * binary predicates `intersects`, `contains` (covers semantics),
//!   `containedBy` and Euclidean `distance`;
//! * pluggable distance functions ([`DistanceFn`]) including Haversine;
//! * columnar predicate kernels over struct-of-arrays coordinate
//!   columns ([`kernels`], [`SelectionBitmap`]) backing the engine's
//!   columnar filter path.
//!
//! ```
//! use stark_geo::Geometry;
//!
//! let region = Geometry::from_wkt("POLYGON((0 0, 10 0, 10 10, 0 10, 0 0))").unwrap();
//! let event = Geometry::point(3.0, 4.0);
//! assert!(region.contains(&event));
//! assert!(event.contained_by(&region));
//! assert_eq!(event.distance(&Geometry::point(6.0, 8.0)), 5.0);
//! ```

pub mod algorithms;
pub mod coord;
pub mod distance;
pub mod envelope;
pub mod error;
pub mod geometry;
pub mod kernels;
pub mod linestring;
pub mod point;
pub mod polygon;
pub mod wkt;

pub use algorithms::convex_hull::{convex_hull, convex_hull_coords};
pub use algorithms::simplify::{simplify, simplify_coords};
pub use algorithms::validity::{is_valid, validate, ValidityError};
pub use coord::Coord;
pub use distance::{haversine, DistanceFn, EARTH_RADIUS_M};
pub use envelope::Envelope;
pub use error::GeoError;
pub use geometry::Geometry;
pub use kernels::SelectionBitmap;
pub use linestring::LineString;
pub use point::Point;
pub use polygon::{Polygon, Ring};
