//! Error type for the geometry kernel.

use std::fmt;

/// Errors produced while constructing or parsing geometries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GeoError {
    /// The geometry violates a structural invariant (too few points,
    /// non-finite coordinates, …).
    InvalidGeometry(String),
    /// The WKT input could not be parsed. Carries a message and the byte
    /// offset at which parsing failed.
    WktParse { message: String, position: usize },
}

impl fmt::Display for GeoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeoError::InvalidGeometry(msg) => write!(f, "invalid geometry: {msg}"),
            GeoError::WktParse { message, position } => {
                write!(f, "WKT parse error at byte {position}: {message}")
            }
        }
    }
}

impl std::error::Error for GeoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = GeoError::InvalidGeometry("boom".into());
        assert_eq!(e.to_string(), "invalid geometry: boom");
        let e = GeoError::WktParse { message: "expected (".into(), position: 7 };
        assert!(e.to_string().contains("byte 7"));
    }
}
