//! Planar coordinates and elementary vector operations.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Relative tolerance used by the robustness-aware comparisons in this
/// kernel. Geometry inputs are expected to be "world sized" (WGS84 degrees
/// or metres), for which an absolute epsilon works well.
pub const EPSILON: f64 = 1e-9;

/// A two-dimensional coordinate.
///
/// `Coord` is a plain value type: it has no geometric semantics of its own
/// and is shared by all geometry types in this crate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Coord {
    pub x: f64,
    pub y: f64,
}

impl Coord {
    /// Creates a coordinate from its two components.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Coord { x, y }
    }

    /// Squared Euclidean distance to `other`.
    ///
    /// Cheaper than [`Coord::distance`]; prefer it for comparisons.
    #[inline]
    pub fn distance_sq(&self, other: &Coord) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(&self, other: &Coord) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Component-wise subtraction, yielding the vector `self - other`.
    #[inline]
    pub fn sub(&self, other: &Coord) -> Coord {
        Coord::new(self.x - other.x, self.y - other.y)
    }

    /// Dot product, treating both coordinates as vectors from the origin.
    #[inline]
    pub fn dot(&self, other: &Coord) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Magnitude of the 2D cross product, treating both as vectors.
    #[inline]
    pub fn cross(&self, other: &Coord) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Whether the two coordinates are equal up to [`EPSILON`].
    #[inline]
    pub fn approx_eq(&self, other: &Coord) -> bool {
        (self.x - other.x).abs() <= EPSILON && (self.y - other.y).abs() <= EPSILON
    }

    /// Whether both components are finite numbers.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl From<(f64, f64)> for Coord {
    fn from((x, y): (f64, f64)) -> Self {
        Coord::new(x, y)
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.x, self.y)
    }
}

/// Orientation of the ordered triple `(a, b, c)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Orientation {
    /// `c` lies to the left of the directed line `a -> b`.
    CounterClockwise,
    /// `c` lies to the right of the directed line `a -> b`.
    Clockwise,
    /// The three points are collinear (within tolerance).
    Collinear,
}

/// Computes the orientation of the ordered point triple `(a, b, c)`.
///
/// Uses the sign of the cross product of `b - a` and `c - a`, with an
/// area-scaled tolerance so nearly-collinear triples are classified as
/// collinear rather than flapping between the two turn directions.
pub fn orientation(a: &Coord, b: &Coord, c: &Coord) -> Orientation {
    let v1 = b.sub(a);
    let v2 = c.sub(a);
    let cross = v1.cross(&v2);
    // Scale the tolerance by the magnitudes involved so that large
    // coordinates do not produce spurious CCW/CW classifications.
    let scale = v1.dot(&v1).max(v2.dot(&v2)).max(1.0);
    let tol = EPSILON * scale;
    if cross > tol {
        Orientation::CounterClockwise
    } else if cross < -tol {
        Orientation::Clockwise
    } else {
        Orientation::Collinear
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Coord::new(0.0, 0.0);
        let b = Coord::new(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(a.distance_sq(&b), 25.0);
    }

    #[test]
    fn cross_sign_matches_orientation() {
        let a = Coord::new(0.0, 0.0);
        let b = Coord::new(1.0, 0.0);
        let up = Coord::new(1.0, 1.0);
        let down = Coord::new(1.0, -1.0);
        let on = Coord::new(2.0, 0.0);
        assert_eq!(orientation(&a, &b, &up), Orientation::CounterClockwise);
        assert_eq!(orientation(&a, &b, &down), Orientation::Clockwise);
        assert_eq!(orientation(&a, &b, &on), Orientation::Collinear);
    }

    #[test]
    fn orientation_is_robust_for_large_coordinates() {
        let a = Coord::new(1e8, 1e8);
        let b = Coord::new(2e8, 2e8);
        let c = Coord::new(3e8, 3e8);
        assert_eq!(orientation(&a, &b, &c), Orientation::Collinear);
    }

    #[test]
    fn approx_eq_tolerates_noise() {
        let a = Coord::new(1.0, 1.0);
        let b = Coord::new(1.0 + 1e-12, 1.0 - 1e-12);
        assert!(a.approx_eq(&b));
        assert!(!a.approx_eq(&Coord::new(1.1, 1.0)));
    }

    #[test]
    fn from_tuple() {
        let c: Coord = (2.5, -3.5).into();
        assert_eq!(c, Coord::new(2.5, -3.5));
    }

    #[test]
    fn display_formats_as_wkt_pair() {
        assert_eq!(Coord::new(1.5, 2.0).to_string(), "1.5 2");
    }
}
