//! Polygons with optional holes.

use crate::coord::Coord;
use crate::envelope::Envelope;
use crate::error::GeoError;
use serde::{Deserialize, Serialize};

/// A closed ring of coordinates.
///
/// Stored with the closing vertex (`first == last`). Rings passed to
/// [`Ring::new`] are closed automatically when the input is open.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ring {
    coords: Vec<Coord>,
}

impl Ring {
    /// Builds a ring from at least three distinct vertices; appends the
    /// closing vertex when missing.
    pub fn new(mut coords: Vec<Coord>) -> Result<Self, GeoError> {
        if coords.iter().any(|c| !c.is_finite()) {
            return Err(GeoError::InvalidGeometry("non-finite coordinate".into()));
        }
        if coords.len() >= 2 && coords.first().unwrap().approx_eq(coords.last().unwrap()) {
            coords.pop();
        }
        if coords.len() < 3 {
            return Err(GeoError::InvalidGeometry(
                "Ring requires at least 3 distinct coordinates".into(),
            ));
        }
        let first = coords[0];
        coords.push(first);
        Ok(Ring { coords })
    }

    /// All vertices including the closing duplicate of the first.
    #[inline]
    pub fn coords_closed(&self) -> &[Coord] {
        &self.coords
    }

    /// Vertices without the closing duplicate.
    #[inline]
    pub fn coords_open(&self) -> &[Coord] {
        &self.coords[..self.coords.len() - 1]
    }

    /// Iterator over the ring's segments, including the closing one.
    pub fn segments(&self) -> impl Iterator<Item = (&Coord, &Coord)> {
        self.coords.windows(2).map(|w| (&w[0], &w[1]))
    }

    /// Signed area by the shoelace formula: positive for counter-clockwise
    /// vertex order, negative for clockwise.
    pub fn signed_area(&self) -> f64 {
        let mut sum = 0.0;
        for (a, b) in self.segments() {
            sum += a.x * b.y - b.x * a.y;
        }
        sum / 2.0
    }

    /// Absolute enclosed area.
    pub fn area(&self) -> f64 {
        self.signed_area().abs()
    }

    /// Perimeter length.
    pub fn perimeter(&self) -> f64 {
        self.segments().map(|(a, b)| a.distance(b)).sum()
    }

    /// Area-weighted centroid of the enclosed region. Falls back to the
    /// vertex mean for zero-area (degenerate) rings.
    pub fn centroid(&self) -> Coord {
        let a = self.signed_area();
        if a.abs() < f64::EPSILON {
            let open = self.coords_open();
            let n = open.len() as f64;
            let (sx, sy) = open.iter().fold((0.0, 0.0), |(sx, sy), c| (sx + c.x, sy + c.y));
            return Coord::new(sx / n, sy / n);
        }
        let mut cx = 0.0;
        let mut cy = 0.0;
        for (p, q) in self.segments() {
            let cross = p.x * q.y - q.x * p.y;
            cx += (p.x + q.x) * cross;
            cy += (p.y + q.y) * cross;
        }
        Coord::new(cx / (6.0 * a), cy / (6.0 * a))
    }

    /// Tightest axis-aligned rectangle around the ring.
    pub fn envelope(&self) -> Envelope {
        Envelope::from_coords(self.coords.iter())
    }
}

/// A polygon: one exterior ring and zero or more interior rings (holes).
///
/// Semantics are the usual simple-features ones: the polygon's region is
/// the area inside the exterior ring minus the areas inside the holes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Polygon {
    exterior: Ring,
    holes: Vec<Ring>,
}

impl Polygon {
    /// Builds a polygon from an exterior ring and holes.
    pub fn new(exterior: Ring, holes: Vec<Ring>) -> Self {
        Polygon { exterior, holes }
    }

    /// Convenience constructor for a hole-free polygon from raw vertices.
    pub fn from_exterior(coords: Vec<Coord>) -> Result<Self, GeoError> {
        Ok(Polygon { exterior: Ring::new(coords)?, holes: Vec::new() })
    }

    /// An axis-aligned rectangular polygon covering `env`.
    pub fn from_envelope(env: &Envelope) -> Result<Self, GeoError> {
        if env.is_empty() {
            return Err(GeoError::InvalidGeometry("empty envelope".into()));
        }
        Polygon::from_exterior(env.corners())
    }

    #[inline]
    pub fn exterior(&self) -> &Ring {
        &self.exterior
    }

    #[inline]
    pub fn holes(&self) -> &[Ring] {
        &self.holes
    }

    /// Exterior area minus hole areas.
    pub fn area(&self) -> f64 {
        self.exterior.area() - self.holes.iter().map(Ring::area).sum::<f64>()
    }

    /// Area-weighted centroid honoring holes. Falls back to the exterior
    /// centroid when the net area vanishes.
    pub fn centroid(&self) -> Coord {
        let ext_a = self.exterior.area();
        let hole_a: f64 = self.holes.iter().map(Ring::area).sum();
        let net = ext_a - hole_a;
        if net.abs() < f64::EPSILON {
            return self.exterior.centroid();
        }
        let ec = self.exterior.centroid();
        let mut cx = ec.x * ext_a;
        let mut cy = ec.y * ext_a;
        for h in &self.holes {
            let hc = h.centroid();
            let ha = h.area();
            cx -= hc.x * ha;
            cy -= hc.y * ha;
        }
        Coord::new(cx / net, cy / net)
    }

    /// Envelope of the exterior ring (holes cannot extend it).
    pub fn envelope(&self) -> Envelope {
        self.exterior.envelope()
    }

    /// Iterator over all rings: the exterior first, then the holes.
    pub fn rings(&self) -> impl Iterator<Item = &Ring> {
        std::iter::once(&self.exterior).chain(self.holes.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(pts: &[(f64, f64)]) -> Ring {
        Ring::new(pts.iter().map(|&(x, y)| Coord::new(x, y)).collect()).unwrap()
    }

    #[test]
    fn ring_auto_closes() {
        let r = ring(&[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0)]);
        assert_eq!(r.coords_closed().len(), 4);
        assert_eq!(r.coords_open().len(), 3);
        assert!(r.coords_closed().first().unwrap().approx_eq(r.coords_closed().last().unwrap()));
    }

    #[test]
    fn ring_rejects_too_few_vertices() {
        assert!(Ring::new(vec![Coord::new(0.0, 0.0), Coord::new(1.0, 1.0)]).is_err());
        // closed pair degenerates to 1 distinct vertex
        assert!(Ring::new(vec![Coord::new(0.0, 0.0), Coord::new(0.0, 0.0)]).is_err());
    }

    #[test]
    fn shoelace_signed_area() {
        let ccw = ring(&[(0.0, 0.0), (2.0, 0.0), (2.0, 2.0), (0.0, 2.0)]);
        assert_eq!(ccw.signed_area(), 4.0);
        let cw = ring(&[(0.0, 0.0), (0.0, 2.0), (2.0, 2.0), (2.0, 0.0)]);
        assert_eq!(cw.signed_area(), -4.0);
        assert_eq!(cw.area(), 4.0);
    }

    #[test]
    fn centroid_of_square() {
        let r = ring(&[(0.0, 0.0), (2.0, 0.0), (2.0, 2.0), (0.0, 2.0)]);
        assert!(r.centroid().approx_eq(&Coord::new(1.0, 1.0)));
    }

    #[test]
    fn polygon_area_subtracts_holes() {
        let outer = ring(&[(0.0, 0.0), (10.0, 0.0), (10.0, 10.0), (0.0, 10.0)]);
        let hole = ring(&[(1.0, 1.0), (3.0, 1.0), (3.0, 3.0), (1.0, 3.0)]);
        let p = Polygon::new(outer, vec![hole]);
        assert_eq!(p.area(), 100.0 - 4.0);
        assert_eq!(p.rings().count(), 2);
    }

    #[test]
    fn centroid_with_hole_shifts_away() {
        let outer = ring(&[(0.0, 0.0), (10.0, 0.0), (10.0, 10.0), (0.0, 10.0)]);
        // hole in the left half pushes the centroid right
        let hole = ring(&[(1.0, 4.0), (3.0, 4.0), (3.0, 6.0), (1.0, 6.0)]);
        let p = Polygon::new(outer, vec![hole]);
        assert!(p.centroid().x > 5.0);
        assert!((p.centroid().y - 5.0).abs() < 1e-9);
    }

    #[test]
    fn from_envelope_rectangle() {
        let e = Envelope::from_bounds(0.0, 0.0, 4.0, 2.0);
        let p = Polygon::from_envelope(&e).unwrap();
        assert_eq!(p.area(), 8.0);
        assert_eq!(p.envelope(), e);
        assert!(Polygon::from_envelope(&Envelope::empty()).is_err());
    }

    #[test]
    fn perimeter() {
        let r = ring(&[(0.0, 0.0), (3.0, 0.0), (3.0, 4.0)]);
        assert_eq!(r.perimeter(), 12.0);
    }
}
