//! Polylines.

use crate::coord::Coord;
use crate::envelope::Envelope;
use crate::error::GeoError;
use serde::{Deserialize, Serialize};

/// An ordered sequence of at least two coordinates, interpreted as the
/// chain of line segments connecting them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LineString {
    coords: Vec<Coord>,
}

impl LineString {
    /// Builds a linestring, validating that it has at least two vertices
    /// and only finite coordinates.
    pub fn new(coords: Vec<Coord>) -> Result<Self, GeoError> {
        if coords.len() < 2 {
            return Err(GeoError::InvalidGeometry(
                "LineString requires at least 2 coordinates".into(),
            ));
        }
        if coords.iter().any(|c| !c.is_finite()) {
            return Err(GeoError::InvalidGeometry("non-finite coordinate".into()));
        }
        Ok(LineString { coords })
    }

    /// The vertex sequence.
    #[inline]
    pub fn coords(&self) -> &[Coord] {
        &self.coords
    }

    /// Number of vertices.
    #[inline]
    pub fn num_coords(&self) -> usize {
        self.coords.len()
    }

    /// Iterator over consecutive vertex pairs (the segments).
    pub fn segments(&self) -> impl Iterator<Item = (&Coord, &Coord)> {
        self.coords.windows(2).map(|w| (&w[0], &w[1]))
    }

    /// Total length of all segments.
    pub fn length(&self) -> f64 {
        self.segments().map(|(a, b)| a.distance(b)).sum()
    }

    /// Whether first and last vertex coincide.
    pub fn is_closed(&self) -> bool {
        self.coords.first().zip(self.coords.last()).is_some_and(|(a, b)| a.approx_eq(b))
    }

    /// Tightest axis-aligned rectangle covering all vertices.
    pub fn envelope(&self) -> Envelope {
        Envelope::from_coords(self.coords.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ls(pts: &[(f64, f64)]) -> LineString {
        LineString::new(pts.iter().map(|&(x, y)| Coord::new(x, y)).collect()).unwrap()
    }

    #[test]
    fn rejects_degenerate() {
        assert!(LineString::new(vec![]).is_err());
        assert!(LineString::new(vec![Coord::new(0.0, 0.0)]).is_err());
        assert!(LineString::new(vec![Coord::new(0.0, 0.0), Coord::new(f64::NAN, 0.0)]).is_err());
    }

    #[test]
    fn length_sums_segments() {
        let l = ls(&[(0.0, 0.0), (3.0, 4.0), (3.0, 8.0)]);
        assert_eq!(l.length(), 9.0);
        assert_eq!(l.segments().count(), 2);
    }

    #[test]
    fn closedness() {
        assert!(!ls(&[(0.0, 0.0), (1.0, 0.0)]).is_closed());
        assert!(ls(&[(0.0, 0.0), (1.0, 0.0), (0.0, 1.0), (0.0, 0.0)]).is_closed());
    }

    #[test]
    fn envelope_covers_vertices() {
        let l = ls(&[(0.0, 5.0), (-1.0, 2.0), (4.0, 3.0)]);
        let e = l.envelope();
        assert_eq!(e, Envelope::from_bounds(-1.0, 2.0, 4.0, 5.0));
    }
}
