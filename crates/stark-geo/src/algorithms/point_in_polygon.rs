//! Point-in-polygon classification by ray casting.

use crate::algorithms::segment::point_on_segment;
use crate::coord::Coord;
use crate::polygon::{Polygon, Ring};

/// Topological relationship of a point to a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointLocation {
    /// Strictly inside the region.
    Interior,
    /// On the region's boundary.
    Boundary,
    /// Strictly outside the region.
    Exterior,
}

/// Classifies `p` against the closed ring using the crossing-number rule.
pub fn locate_in_ring(p: &Coord, ring: &Ring) -> PointLocation {
    for (a, b) in ring.segments() {
        if point_on_segment(p, a, b) {
            return PointLocation::Boundary;
        }
    }
    // Ray cast towards +x. Count crossings with the half-open rule
    // (a.y <= p.y < b.y or b.y <= p.y < a.y) so ray-through-vertex cases
    // are counted exactly once.
    let mut inside = false;
    for (a, b) in ring.segments() {
        let crosses_y = (a.y <= p.y && p.y < b.y) || (b.y <= p.y && p.y < a.y);
        if crosses_y {
            let t = (p.y - a.y) / (b.y - a.y);
            let x_at = a.x + t * (b.x - a.x);
            if x_at > p.x {
                inside = !inside;
            }
        }
    }
    if inside {
        PointLocation::Interior
    } else {
        PointLocation::Exterior
    }
}

/// Classifies `p` against the polygon's region (exterior minus holes).
///
/// Hole boundaries are part of the polygon's boundary; points strictly
/// inside a hole are exterior.
pub fn locate_in_polygon(p: &Coord, poly: &Polygon) -> PointLocation {
    if !poly.envelope().contains_coord(p) {
        return PointLocation::Exterior;
    }
    match locate_in_ring(p, poly.exterior()) {
        PointLocation::Exterior => PointLocation::Exterior,
        PointLocation::Boundary => PointLocation::Boundary,
        PointLocation::Interior => {
            for hole in poly.holes() {
                match locate_in_ring(p, hole) {
                    PointLocation::Interior => return PointLocation::Exterior,
                    PointLocation::Boundary => return PointLocation::Boundary,
                    PointLocation::Exterior => {}
                }
            }
            PointLocation::Interior
        }
    }
}

/// Whether `p` lies inside or on the boundary of the polygon's region.
pub fn polygon_covers_coord(poly: &Polygon, p: &Coord) -> bool {
    locate_in_polygon(p, poly) != PointLocation::Exterior
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(pts: &[(f64, f64)]) -> Ring {
        Ring::new(pts.iter().map(|&(x, y)| Coord::new(x, y)).collect()).unwrap()
    }

    fn unit_square() -> Polygon {
        Polygon::new(ring(&[(0.0, 0.0), (4.0, 0.0), (4.0, 4.0), (0.0, 4.0)]), vec![])
    }

    #[test]
    fn interior_exterior_boundary() {
        let p = unit_square();
        assert_eq!(locate_in_polygon(&Coord::new(2.0, 2.0), &p), PointLocation::Interior);
        assert_eq!(locate_in_polygon(&Coord::new(5.0, 2.0), &p), PointLocation::Exterior);
        assert_eq!(locate_in_polygon(&Coord::new(4.0, 2.0), &p), PointLocation::Boundary);
        assert_eq!(locate_in_polygon(&Coord::new(0.0, 0.0), &p), PointLocation::Boundary);
    }

    #[test]
    fn ray_through_vertex_counts_once() {
        // point whose +x ray passes exactly through a polygon vertex
        let tri = Polygon::new(ring(&[(2.0, 0.0), (4.0, 2.0), (2.0, 4.0)]), vec![]);
        assert_eq!(locate_in_polygon(&Coord::new(0.0, 2.0), &tri), PointLocation::Exterior);
        assert_eq!(locate_in_polygon(&Coord::new(2.5, 2.0), &tri), PointLocation::Interior);
    }

    #[test]
    fn holes_are_exterior() {
        let hole = ring(&[(1.0, 1.0), (3.0, 1.0), (3.0, 3.0), (1.0, 3.0)]);
        let p = Polygon::new(ring(&[(0.0, 0.0), (4.0, 0.0), (4.0, 4.0), (0.0, 4.0)]), vec![hole]);
        assert_eq!(locate_in_polygon(&Coord::new(2.0, 2.0), &p), PointLocation::Exterior);
        assert_eq!(locate_in_polygon(&Coord::new(1.0, 2.0), &p), PointLocation::Boundary);
        assert_eq!(locate_in_polygon(&Coord::new(0.5, 2.0), &p), PointLocation::Interior);
        assert!(polygon_covers_coord(&p, &Coord::new(0.5, 2.0)));
        assert!(!polygon_covers_coord(&p, &Coord::new(2.0, 2.0)));
    }

    #[test]
    fn concave_polygon() {
        // U-shape
        let u = Polygon::new(
            ring(&[
                (0.0, 0.0),
                (6.0, 0.0),
                (6.0, 6.0),
                (4.0, 6.0),
                (4.0, 2.0),
                (2.0, 2.0),
                (2.0, 6.0),
                (0.0, 6.0),
            ]),
            vec![],
        );
        assert_eq!(locate_in_polygon(&Coord::new(3.0, 4.0), &u), PointLocation::Exterior);
        assert_eq!(locate_in_polygon(&Coord::new(1.0, 4.0), &u), PointLocation::Interior);
        assert_eq!(locate_in_polygon(&Coord::new(5.0, 4.0), &u), PointLocation::Interior);
        assert_eq!(locate_in_polygon(&Coord::new(3.0, 1.0), &u), PointLocation::Interior);
    }

    #[test]
    fn envelope_short_circuit() {
        let p = unit_square();
        assert_eq!(locate_in_polygon(&Coord::new(100.0, 100.0), &p), PointLocation::Exterior);
    }
}
