//! Convex hulls via Andrew's monotone chain.

use crate::coord::Coord;
use crate::error::GeoError;
use crate::geometry::Geometry;
use crate::polygon::{Polygon, Ring};

/// Computes the convex hull of a coordinate set as a counter-clockwise
/// ring of hull vertices (no closing duplicate). Returns fewer than three
/// coordinates for degenerate inputs (empty, single point, collinear).
pub fn convex_hull_coords(coords: &[Coord]) -> Vec<Coord> {
    let mut pts: Vec<Coord> = coords.to_vec();
    pts.sort_by(|a, b| {
        a.x.partial_cmp(&b.x)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.y.partial_cmp(&b.y).unwrap_or(std::cmp::Ordering::Equal))
    });
    pts.dedup_by(|a, b| a.approx_eq(b));
    let n = pts.len();
    if n < 3 {
        return pts;
    }

    let cross = |o: &Coord, a: &Coord, b: &Coord| -> f64 {
        (a.x - o.x) * (b.y - o.y) - (a.y - o.y) * (b.x - o.x)
    };

    let mut lower: Vec<Coord> = Vec::with_capacity(n);
    for p in &pts {
        while lower.len() >= 2 && cross(&lower[lower.len() - 2], &lower[lower.len() - 1], p) <= 0.0
        {
            lower.pop();
        }
        lower.push(*p);
    }
    let mut upper: Vec<Coord> = Vec::with_capacity(n);
    for p in pts.iter().rev() {
        while upper.len() >= 2 && cross(&upper[upper.len() - 2], &upper[upper.len() - 1], p) <= 0.0
        {
            upper.pop();
        }
        upper.push(*p);
    }
    lower.pop();
    upper.pop();
    lower.extend(upper);
    lower
}

/// Convex hull of a geometry's coordinates, as a polygon.
///
/// Degenerate inputs (fewer than three non-collinear points) yield an
/// `InvalidGeometry` error, mirroring the ring constructor.
pub fn convex_hull(geometry: &Geometry) -> Result<Polygon, GeoError> {
    let coords = all_coords(geometry);
    let hull = convex_hull_coords(&coords);
    if hull.len() < 3 {
        return Err(GeoError::InvalidGeometry(
            "convex hull of fewer than 3 non-collinear points".into(),
        ));
    }
    Ok(Polygon::new(Ring::new(hull)?, Vec::new()))
}

fn all_coords(g: &Geometry) -> Vec<Coord> {
    match g {
        Geometry::Point(p) => vec![*p.coord()],
        Geometry::MultiPoint(ps) => ps.iter().map(|p| *p.coord()).collect(),
        Geometry::LineString(l) => l.coords().to_vec(),
        Geometry::MultiLineString(ls) => {
            ls.iter().flat_map(|l| l.coords().iter().copied()).collect()
        }
        Geometry::Polygon(p) => p.rings().flat_map(|r| r.coords_open().iter().copied()).collect(),
        Geometry::MultiPolygon(ps) => ps
            .iter()
            .flat_map(|p| p.rings())
            .flat_map(|r| r.coords_open().iter().copied())
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(x: f64, y: f64) -> Coord {
        Coord::new(x, y)
    }

    #[test]
    fn hull_of_square_with_interior_points() {
        let pts = vec![
            c(0.0, 0.0),
            c(4.0, 0.0),
            c(4.0, 4.0),
            c(0.0, 4.0),
            c(2.0, 2.0), // interior
            c(1.0, 2.0), // interior
        ];
        let hull = convex_hull_coords(&pts);
        assert_eq!(hull.len(), 4);
        // all interior points excluded
        assert!(!hull.iter().any(|p| p.approx_eq(&c(2.0, 2.0))));
    }

    #[test]
    fn hull_is_ccw() {
        let pts = vec![c(0.0, 0.0), c(3.0, 1.0), c(1.0, 4.0), c(-2.0, 2.0), c(1.0, 1.0)];
        let hull = convex_hull_coords(&pts);
        let ring = Ring::new(hull).unwrap();
        assert!(ring.signed_area() > 0.0, "hull ring must be counter-clockwise");
    }

    #[test]
    fn degenerate_inputs() {
        assert!(convex_hull_coords(&[]).is_empty());
        assert_eq!(convex_hull_coords(&[c(1.0, 1.0)]).len(), 1);
        assert_eq!(convex_hull_coords(&[c(1.0, 1.0), c(1.0, 1.0)]).len(), 1);
        // collinear points collapse to the two extremes
        let hull = convex_hull_coords(&[c(0.0, 0.0), c(1.0, 1.0), c(2.0, 2.0), c(3.0, 3.0)]);
        assert!(hull.len() <= 2, "collinear hull: {hull:?}");
        assert!(convex_hull(&Geometry::point(1.0, 1.0)).is_err());
    }

    #[test]
    fn hull_contains_all_inputs() {
        let pts: Vec<Coord> =
            (0..50).map(|i| c(((i * 17) % 23) as f64, ((i * 7) % 19) as f64)).collect();
        let g = Geometry::MultiPoint(pts.iter().map(|&p| crate::point::Point(p)).collect());
        let hull = convex_hull(&g).unwrap();
        let hull_geom = Geometry::Polygon(hull);
        for p in &pts {
            assert!(hull_geom.intersects(&Geometry::point(p.x, p.y)), "hull must cover {p}");
        }
    }

    #[test]
    fn hull_of_polygon_is_itself_for_convex() {
        let rect = Geometry::rect(0.0, 0.0, 5.0, 3.0);
        let hull = convex_hull(&rect).unwrap();
        assert!((hull.area() - 15.0).abs() < 1e-9);
    }
}
