//! Geometric algorithms underpinning the predicate API.

pub mod convex_hull;
pub mod point_in_polygon;
pub mod relate;
pub mod segment;
pub mod simplify;
pub mod validity;
