//! Line-segment primitives: on-segment tests, intersection, distances.

use crate::coord::{orientation, Coord, Orientation, EPSILON};

/// Whether `p` lies on the closed segment `a..=b` (within tolerance).
pub fn point_on_segment(p: &Coord, a: &Coord, b: &Coord) -> bool {
    if orientation(a, b, p) != Orientation::Collinear {
        return false;
    }
    p.x >= a.x.min(b.x) - EPSILON
        && p.x <= a.x.max(b.x) + EPSILON
        && p.y >= a.y.min(b.y) - EPSILON
        && p.y <= a.y.max(b.y) + EPSILON
}

/// Whether the closed segments `p1..=p2` and `q1..=q2` share a point.
///
/// Standard orientation-based test with the four collinear special cases.
pub fn segments_intersect(p1: &Coord, p2: &Coord, q1: &Coord, q2: &Coord) -> bool {
    let o1 = orientation(p1, p2, q1);
    let o2 = orientation(p1, p2, q2);
    let o3 = orientation(q1, q2, p1);
    let o4 = orientation(q1, q2, p2);

    // General case. A mixed pair with one Collinear value cannot yield a
    // false positive: q1 on line(p) and p1 on line(q) forces the two lines
    // to coincide, which makes all four orientations collinear.
    if o1 != o2 && o3 != o4 {
        return true;
    }

    (o1 == Orientation::Collinear && point_on_segment(q1, p1, p2))
        || (o2 == Orientation::Collinear && point_on_segment(q2, p1, p2))
        || (o3 == Orientation::Collinear && point_on_segment(p1, q1, q2))
        || (o4 == Orientation::Collinear && point_on_segment(p2, q1, q2))
}

/// Whether the open interiors of the two segments cross at a single point
/// (a *proper* crossing — endpoint touches and collinear overlap excluded).
pub fn segments_cross_properly(p1: &Coord, p2: &Coord, q1: &Coord, q2: &Coord) -> bool {
    let o1 = orientation(p1, p2, q1);
    let o2 = orientation(p1, p2, q2);
    let o3 = orientation(q1, q2, p1);
    let o4 = orientation(q1, q2, p2);
    o1 != Orientation::Collinear
        && o2 != Orientation::Collinear
        && o3 != Orientation::Collinear
        && o4 != Orientation::Collinear
        && o1 != o2
        && o3 != o4
}

/// Minimum distance from point `p` to the closed segment `a..=b`.
pub fn point_segment_distance(p: &Coord, a: &Coord, b: &Coord) -> f64 {
    let ab = b.sub(a);
    let len_sq = ab.dot(&ab);
    if len_sq < f64::EPSILON {
        return p.distance(a);
    }
    let ap = p.sub(a);
    let t = (ap.dot(&ab) / len_sq).clamp(0.0, 1.0);
    let proj = Coord::new(a.x + t * ab.x, a.y + t * ab.y);
    p.distance(&proj)
}

/// Minimum distance between the two closed segments; zero if they touch.
pub fn segment_segment_distance(p1: &Coord, p2: &Coord, q1: &Coord, q2: &Coord) -> f64 {
    if segments_intersect(p1, p2, q1, q2) {
        return 0.0;
    }
    point_segment_distance(p1, q1, q2)
        .min(point_segment_distance(p2, q1, q2))
        .min(point_segment_distance(q1, p1, p2))
        .min(point_segment_distance(q2, p1, p2))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(x: f64, y: f64) -> Coord {
        Coord::new(x, y)
    }

    #[test]
    fn on_segment() {
        assert!(point_on_segment(&c(1.0, 1.0), &c(0.0, 0.0), &c(2.0, 2.0)));
        assert!(point_on_segment(&c(0.0, 0.0), &c(0.0, 0.0), &c(2.0, 2.0)));
        assert!(!point_on_segment(&c(3.0, 3.0), &c(0.0, 0.0), &c(2.0, 2.0)));
        assert!(!point_on_segment(&c(1.0, 1.2), &c(0.0, 0.0), &c(2.0, 2.0)));
    }

    #[test]
    fn crossing_segments() {
        assert!(segments_intersect(&c(0.0, 0.0), &c(2.0, 2.0), &c(0.0, 2.0), &c(2.0, 0.0)));
        assert!(segments_cross_properly(&c(0.0, 0.0), &c(2.0, 2.0), &c(0.0, 2.0), &c(2.0, 0.0)));
    }

    #[test]
    fn disjoint_segments() {
        assert!(!segments_intersect(&c(0.0, 0.0), &c(1.0, 0.0), &c(0.0, 1.0), &c(1.0, 1.0)));
        assert!(!segments_cross_properly(&c(0.0, 0.0), &c(1.0, 0.0), &c(0.0, 1.0), &c(1.0, 1.0)));
    }

    #[test]
    fn endpoint_touch_intersects_but_not_properly() {
        assert!(segments_intersect(&c(0.0, 0.0), &c(1.0, 1.0), &c(1.0, 1.0), &c(2.0, 0.0)));
        assert!(!segments_cross_properly(&c(0.0, 0.0), &c(1.0, 1.0), &c(1.0, 1.0), &c(2.0, 0.0)));
    }

    #[test]
    fn collinear_overlap_intersects() {
        assert!(segments_intersect(&c(0.0, 0.0), &c(3.0, 0.0), &c(1.0, 0.0), &c(5.0, 0.0)));
        assert!(!segments_cross_properly(&c(0.0, 0.0), &c(3.0, 0.0), &c(1.0, 0.0), &c(5.0, 0.0)));
    }

    #[test]
    fn collinear_disjoint_does_not_intersect() {
        assert!(!segments_intersect(&c(0.0, 0.0), &c(1.0, 0.0), &c(2.0, 0.0), &c(3.0, 0.0)));
    }

    #[test]
    fn t_junction_intersects() {
        // q1 lies in the middle of segment p
        assert!(segments_intersect(&c(0.0, 0.0), &c(4.0, 0.0), &c(2.0, 0.0), &c(2.0, 3.0)));
    }

    #[test]
    fn point_segment_dist() {
        assert_eq!(point_segment_distance(&c(0.0, 1.0), &c(-1.0, 0.0), &c(1.0, 0.0)), 1.0);
        // beyond the endpoint: distance to endpoint
        assert_eq!(point_segment_distance(&c(3.0, 4.0), &c(-1.0, 0.0), &c(0.0, 0.0)), 5.0);
        // degenerate segment
        assert_eq!(point_segment_distance(&c(3.0, 4.0), &c(0.0, 0.0), &c(0.0, 0.0)), 5.0);
    }

    #[test]
    fn segment_segment_dist() {
        assert_eq!(
            segment_segment_distance(&c(0.0, 0.0), &c(1.0, 0.0), &c(0.0, 2.0), &c(1.0, 2.0)),
            2.0
        );
        assert_eq!(
            segment_segment_distance(&c(0.0, 0.0), &c(2.0, 2.0), &c(0.0, 2.0), &c(2.0, 0.0)),
            0.0
        );
    }
}
