//! Binary spatial predicates over [`Geometry`] values.
//!
//! The dispatch here is deliberately simple and exhaustive: every pair of
//! concrete geometry kinds is reduced to a small set of primitive tests
//! (segment intersection, point-in-polygon, point-on-segment). Multi
//! geometries fold over their members.

use crate::algorithms::point_in_polygon::{locate_in_polygon, polygon_covers_coord, PointLocation};
use crate::algorithms::segment::{
    point_on_segment, point_segment_distance, segment_segment_distance, segments_cross_properly,
    segments_intersect,
};
use crate::coord::Coord;
use crate::geometry::Geometry;
use crate::linestring::LineString;
use crate::point::Point;
use crate::polygon::Polygon;

// ---------------------------------------------------------------------------
// intersects
// ---------------------------------------------------------------------------

/// Whether the closed point sets of `a` and `b` share at least one point.
pub fn intersects(a: &Geometry, b: &Geometry) -> bool {
    if !a.envelope().intersects(&b.envelope()) {
        return false;
    }
    use Geometry::*;
    match (a, b) {
        (Point(p), Point(q)) => p.coord().approx_eq(q.coord()),
        (Point(p), LineString(l)) | (LineString(l), Point(p)) => point_on_line(p, l),
        (Point(p), Polygon(pg)) | (Polygon(pg), Point(p)) => polygon_covers_coord(pg, p.coord()),
        (LineString(l), LineString(m)) => lines_intersect(l, m),
        (LineString(l), Polygon(pg)) | (Polygon(pg), LineString(l)) => {
            line_polygon_intersect(l, pg)
        }
        (Polygon(p), Polygon(q)) => polygons_intersect(p, q),
        // Multi geometries: any member intersecting is enough.
        (MultiPoint(ps), other) | (other, MultiPoint(ps)) => {
            ps.iter().any(|p| intersects(&Point(*p), other))
        }
        (MultiLineString(ls), other) | (other, MultiLineString(ls)) => {
            ls.iter().any(|l| intersects(&LineString(l.clone()), other))
        }
        (MultiPolygon(ps), other) | (other, MultiPolygon(ps)) => {
            ps.iter().any(|p| intersects(&Polygon(p.clone()), other))
        }
    }
}

fn point_on_line(p: &Point, l: &LineString) -> bool {
    l.segments().any(|(a, b)| point_on_segment(p.coord(), a, b))
}

fn lines_intersect(l: &LineString, m: &LineString) -> bool {
    l.segments().any(|(a, b)| m.segments().any(|(c, d)| segments_intersect(a, b, c, d)))
}

fn line_polygon_intersect(l: &LineString, pg: &Polygon) -> bool {
    // Any vertex inside the region, or any edge touching any ring.
    l.coords().iter().any(|c| polygon_covers_coord(pg, c))
        || l.segments().any(|(a, b)| {
            pg.rings().any(|r| r.segments().any(|(c, d)| segments_intersect(a, b, c, d)))
        })
}

fn polygons_intersect(p: &Polygon, q: &Polygon) -> bool {
    // Boundary touch or crossing?
    let boundary = p.rings().any(|rp| {
        q.rings().any(|rq| {
            rp.segments().any(|(a, b)| rq.segments().any(|(c, d)| segments_intersect(a, b, c, d)))
        })
    });
    if boundary {
        return true;
    }
    // No boundary contact: one region strictly inside the other (or disjoint).
    polygon_covers_coord(p, &q.exterior().coords_open()[0])
        || polygon_covers_coord(q, &p.exterior().coords_open()[0])
}

// ---------------------------------------------------------------------------
// covers (the kernel's `contains`)
// ---------------------------------------------------------------------------

/// Whether every point of `b` lies in the closed region of `a`.
///
/// For linestring-covers-linestring and the concave polygon edge cases the
/// test is a sound approximation: all vertices and all segment midpoints
/// of `b` must be covered and no segment of `b` may properly cross `a`'s
/// boundary. This classifies all practically-occurring inputs correctly.
pub fn covers(a: &Geometry, b: &Geometry) -> bool {
    if !a.envelope().contains_envelope(&b.envelope()) {
        return false;
    }
    use Geometry::*;
    match (a, b) {
        (Point(p), Point(q)) => p.coord().approx_eq(q.coord()),
        (Point(_), MultiPoint(qs)) => qs.iter().all(|q| covers(a, &Point(*q))),
        (Point(_), _) => false,
        (LineString(l), Point(q)) => point_on_line(q, l),
        (LineString(l), LineString(m)) => line_covers_line(l, m),
        (LineString(_), Polygon(_)) => false,
        (Polygon(pg), Point(q)) => polygon_covers_coord(pg, q.coord()),
        (Polygon(pg), LineString(m)) => polygon_covers_line(pg, m),
        (Polygon(p), Polygon(q)) => polygon_covers_polygon(p, q),
        // Multi on the right: must cover every member.
        (_, MultiPoint(qs)) => qs.iter().all(|q| covers(a, &Point(*q))),
        (_, MultiLineString(qs)) => qs.iter().all(|q| covers(a, &LineString(q.clone()))),
        (_, MultiPolygon(qs)) => qs.iter().all(|q| covers(a, &Polygon(q.clone()))),
        // Multi on the left: some member must cover each piece of b.
        // (A union of members could jointly cover b without any single
        // member doing so; we accept the stricter per-member test, which
        // is exact for the point workloads this engine processes.)
        (MultiPoint(ps), _) => ps.iter().any(|p| covers(&Point(*p), b)),
        (MultiLineString(ps), _) => ps.iter().any(|p| covers(&LineString(p.clone()), b)),
        (MultiPolygon(ps), _) => ps.iter().any(|p| covers(&Polygon(p.clone()), b)),
    }
}

fn midpoint(a: &Coord, b: &Coord) -> Coord {
    Coord::new((a.x + b.x) / 2.0, (a.y + b.y) / 2.0)
}

fn line_covers_line(l: &LineString, m: &LineString) -> bool {
    m.coords().iter().all(|c| l.segments().any(|(a, b)| point_on_segment(c, a, b)))
        && m.segments().all(|(p, q)| {
            let mid = midpoint(p, q);
            l.segments().any(|(a, b)| point_on_segment(&mid, a, b))
        })
}

fn polygon_covers_line(pg: &Polygon, m: &LineString) -> bool {
    m.coords().iter().all(|c| polygon_covers_coord(pg, c))
        && m.segments().all(|(p, q)| polygon_covers_coord(pg, &midpoint(p, q)))
        && m.segments().all(|(p, q)| {
            pg.rings().all(|r| r.segments().all(|(a, b)| !segments_cross_properly(p, q, a, b)))
        })
}

fn polygon_covers_polygon(p: &Polygon, q: &Polygon) -> bool {
    // Every vertex of q covered, no proper boundary crossings, midpoints
    // covered (concavity guard), and no hole of p pokes into q's interior.
    let vertices_ok = q.rings().all(|r| r.coords_open().iter().all(|c| polygon_covers_coord(p, c)));
    if !vertices_ok {
        return false;
    }
    let no_crossings = q.rings().all(|rq| {
        p.rings().all(|rp| {
            rq.segments()
                .all(|(a, b)| rp.segments().all(|(c, d)| !segments_cross_properly(a, b, c, d)))
        })
    });
    if !no_crossings {
        return false;
    }
    let midpoints_ok =
        q.exterior().segments().all(|(a, b)| polygon_covers_coord(p, &midpoint(a, b)));
    if !midpoints_ok {
        return false;
    }
    // A hole of p strictly inside q's region means part of q is not in p.
    p.holes().iter().all(|h| {
        !h.coords_open().iter().any(|c| locate_in_polygon(c, q) == PointLocation::Interior)
    })
}

// ---------------------------------------------------------------------------
// distance
// ---------------------------------------------------------------------------

/// Minimum Euclidean distance between the closed point sets of `a` and
/// `b`; zero when they intersect.
pub fn distance(a: &Geometry, b: &Geometry) -> f64 {
    use Geometry::*;
    match (a, b) {
        (Point(p), Point(q)) => p.coord().distance(q.coord()),
        (Point(p), LineString(l)) | (LineString(l), Point(p)) => point_line_distance(p, l),
        (Point(p), Polygon(pg)) | (Polygon(pg), Point(p)) => point_polygon_distance(p, pg),
        (LineString(l), LineString(m)) => line_line_distance(l, m),
        (LineString(l), Polygon(pg)) | (Polygon(pg), LineString(l)) => {
            if line_polygon_intersect(l, pg) {
                0.0
            } else {
                l.segments()
                    .flat_map(|(a, b)| {
                        pg.rings().flat_map(move |r| {
                            r.segments().map(move |(c, d)| segment_segment_distance(a, b, c, d))
                        })
                    })
                    .fold(f64::INFINITY, f64::min)
            }
        }
        (Polygon(p), Polygon(q)) => {
            if polygons_intersect(p, q) {
                0.0
            } else {
                p.rings()
                    .flat_map(|rp| {
                        q.rings().flat_map(move |rq| {
                            rp.segments().flat_map(move |(a, b)| {
                                rq.segments()
                                    .map(move |(c, d)| segment_segment_distance(a, b, c, d))
                            })
                        })
                    })
                    .fold(f64::INFINITY, f64::min)
            }
        }
        (MultiPoint(ps), other) | (other, MultiPoint(ps)) => {
            ps.iter().map(|p| distance(&Point(*p), other)).fold(f64::INFINITY, f64::min)
        }
        (MultiLineString(ls), other) | (other, MultiLineString(ls)) => {
            ls.iter().map(|l| distance(&LineString(l.clone()), other)).fold(f64::INFINITY, f64::min)
        }
        (MultiPolygon(ps), other) | (other, MultiPolygon(ps)) => {
            ps.iter().map(|p| distance(&Polygon(p.clone()), other)).fold(f64::INFINITY, f64::min)
        }
    }
}

fn line_line_distance(l: &LineString, m: &LineString) -> f64 {
    if lines_intersect(l, m) {
        return 0.0;
    }
    l.segments()
        .flat_map(|(a, b)| m.segments().map(move |(c, d)| segment_segment_distance(a, b, c, d)))
        .fold(f64::INFINITY, f64::min)
}

fn point_line_distance(p: &Point, l: &LineString) -> f64 {
    l.segments().map(|(a, b)| point_segment_distance(p.coord(), a, b)).fold(f64::INFINITY, f64::min)
}

fn point_polygon_distance(p: &Point, pg: &Polygon) -> f64 {
    if polygon_covers_coord(pg, p.coord()) {
        return 0.0;
    }
    pg.rings()
        .flat_map(|r| r.segments().map(|(a, b)| point_segment_distance(p.coord(), a, b)))
        .fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Geometry;

    fn wkt(s: &str) -> Geometry {
        Geometry::from_wkt(s).unwrap()
    }

    #[test]
    fn point_point() {
        assert!(intersects(&Geometry::point(1.0, 1.0), &Geometry::point(1.0, 1.0)));
        assert!(!intersects(&Geometry::point(1.0, 1.0), &Geometry::point(1.0, 1.1)));
        assert!(covers(&Geometry::point(1.0, 1.0), &Geometry::point(1.0, 1.0)));
    }

    #[test]
    fn point_in_polygon_predicates() {
        let poly = Geometry::rect(0.0, 0.0, 10.0, 10.0);
        let inside = Geometry::point(5.0, 5.0);
        let outside = Geometry::point(15.0, 5.0);
        let boundary = Geometry::point(10.0, 5.0);
        assert!(intersects(&poly, &inside));
        assert!(!intersects(&poly, &outside));
        assert!(intersects(&poly, &boundary));
        assert!(covers(&poly, &inside));
        assert!(covers(&poly, &boundary));
        assert!(!covers(&poly, &outside));
        assert!(!covers(&inside, &poly));
    }

    #[test]
    fn polygon_polygon_relations() {
        let a = Geometry::rect(0.0, 0.0, 10.0, 10.0);
        let b = Geometry::rect(5.0, 5.0, 15.0, 15.0); // overlaps a
        let c = Geometry::rect(2.0, 2.0, 4.0, 4.0); // inside a
        let d = Geometry::rect(20.0, 20.0, 30.0, 30.0); // disjoint
        assert!(intersects(&a, &b));
        assert!(intersects(&a, &c));
        assert!(!intersects(&a, &d));
        assert!(covers(&a, &c));
        assert!(!covers(&a, &b));
        assert!(!covers(&c, &a));
        assert!(covers(&a, &a));
    }

    #[test]
    fn nested_without_boundary_contact() {
        let outer = Geometry::rect(0.0, 0.0, 100.0, 100.0);
        let inner = Geometry::rect(40.0, 40.0, 60.0, 60.0);
        assert!(intersects(&outer, &inner));
        assert!(intersects(&inner, &outer));
    }

    #[test]
    fn polygon_with_hole_does_not_cover_hole_filler() {
        let holed = wkt("POLYGON((0 0, 10 0, 10 10, 0 10, 0 0), (3 3, 7 3, 7 7, 3 7, 3 3))");
        let filler = Geometry::rect(4.0, 4.0, 6.0, 6.0);
        assert!(!covers(&holed, &filler));
        // but it does cover a rectangle avoiding the hole
        let side = Geometry::rect(0.5, 0.5, 2.0, 9.0);
        assert!(covers(&holed, &side));
        // point inside the hole does not intersect
        assert!(!intersects(&holed, &Geometry::point(5.0, 5.0)));
    }

    #[test]
    fn line_predicates() {
        let l = wkt("LINESTRING(0 0, 10 10)");
        let crossing = wkt("LINESTRING(0 10, 10 0)");
        let parallel = wkt("LINESTRING(0 1, 9 10)");
        let poly = Geometry::rect(4.0, 4.0, 6.0, 6.0);
        assert!(intersects(&l, &crossing));
        assert!(!intersects(&l, &parallel));
        assert!(intersects(&l, &poly));
        assert!(covers(&poly, &wkt("LINESTRING(4.5 4.5, 5.5 5.5)")));
        assert!(!covers(&poly, &l));
        assert!(covers(&l, &wkt("LINESTRING(1 1, 2 2)")));
        assert!(!covers(&l, &crossing));
    }

    #[test]
    fn line_through_polygon_with_endpoints_outside() {
        let l = wkt("LINESTRING(-5 5, 15 5)");
        let poly = Geometry::rect(0.0, 0.0, 10.0, 10.0);
        assert!(intersects(&l, &poly));
        assert!(!covers(&poly, &l));
    }

    #[test]
    fn concave_polygon_does_not_cover_bridging_line() {
        // U-shape; the line connects the two prongs across the notch
        let u = wkt("POLYGON((0 0, 6 0, 6 6, 4 6, 4 2, 2 2, 2 6, 0 6, 0 0))");
        let bridge = wkt("LINESTRING(1 5, 5 5)");
        assert!(!covers(&u, &bridge));
        assert!(intersects(&u, &bridge));
        let inside = wkt("LINESTRING(0.5 1, 5 1)");
        assert!(covers(&u, &inside));
    }

    #[test]
    fn multipoint_fold() {
        let mp = wkt("MULTIPOINT(1 1, 9 9)");
        let poly = Geometry::rect(0.0, 0.0, 2.0, 2.0);
        assert!(intersects(&mp, &poly));
        assert!(!covers(&poly, &mp));
        assert!(covers(&Geometry::rect(0.0, 0.0, 10.0, 10.0), &mp));
    }

    #[test]
    fn distances() {
        let a = Geometry::point(0.0, 0.0);
        let b = Geometry::point(3.0, 4.0);
        assert_eq!(distance(&a, &b), 5.0);
        let poly = Geometry::rect(10.0, 0.0, 20.0, 10.0);
        assert_eq!(distance(&a, &poly), 10.0);
        assert_eq!(distance(&Geometry::point(15.0, 5.0), &poly), 0.0);
        let l = wkt("LINESTRING(0 2, 10 2)");
        assert_eq!(distance(&a, &l), 2.0);
        assert_eq!(distance(&l, &poly), 0.0);
        let far = wkt("LINESTRING(0 20, 10 20)");
        assert_eq!(distance(&far, &poly), 10.0);
        assert_eq!(distance(&poly, &Geometry::rect(30.0, 0.0, 40.0, 10.0)), 10.0);
    }

    #[test]
    fn intersects_is_symmetric() {
        let cases = [
            (wkt("POINT(5 5)"), Geometry::rect(0.0, 0.0, 10.0, 10.0)),
            (wkt("LINESTRING(0 0, 10 10)"), Geometry::rect(2.0, 2.0, 4.0, 4.0)),
            (Geometry::rect(0.0, 0.0, 3.0, 3.0), Geometry::rect(2.0, 2.0, 5.0, 5.0)),
        ];
        for (a, b) in &cases {
            assert_eq!(intersects(a, b), intersects(b, a));
            assert_eq!(distance(a, b), distance(b, a));
        }
    }
}
