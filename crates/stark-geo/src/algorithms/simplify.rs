//! Line simplification with Douglas–Peucker, useful for shrinking
//! trajectory events before analysis.

use crate::algorithms::segment::point_segment_distance;
use crate::coord::Coord;
use crate::linestring::LineString;

/// Simplifies a coordinate chain with the Douglas–Peucker algorithm:
/// vertices farther than `tolerance` from the simplified chain are kept.
/// The first and last coordinates are always retained.
pub fn simplify_coords(coords: &[Coord], tolerance: f64) -> Vec<Coord> {
    assert!(tolerance >= 0.0, "tolerance must be non-negative");
    if coords.len() <= 2 {
        return coords.to_vec();
    }
    let mut keep = vec![false; coords.len()];
    keep[0] = true;
    keep[coords.len() - 1] = true;
    let mut stack = vec![(0usize, coords.len() - 1)];
    while let Some((lo, hi)) = stack.pop() {
        if hi <= lo + 1 {
            continue;
        }
        let (mut max_d, mut max_i) = (0.0f64, lo + 1);
        for i in (lo + 1)..hi {
            let d = point_segment_distance(&coords[i], &coords[lo], &coords[hi]);
            if d > max_d {
                max_d = d;
                max_i = i;
            }
        }
        if max_d > tolerance {
            keep[max_i] = true;
            stack.push((lo, max_i));
            stack.push((max_i, hi));
        }
    }
    coords.iter().zip(&keep).filter(|(_, k)| **k).map(|(c, _)| *c).collect()
}

/// Simplifies a linestring; always yields a valid linestring (at least
/// the two endpoints survive).
pub fn simplify(line: &LineString, tolerance: f64) -> LineString {
    let coords = simplify_coords(line.coords(), tolerance);
    LineString::new(coords).expect("endpoints always retained")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ls(pts: &[(f64, f64)]) -> LineString {
        LineString::new(pts.iter().map(|&(x, y)| Coord::new(x, y)).collect()).unwrap()
    }

    #[test]
    fn straight_line_collapses_to_endpoints() {
        let line = ls(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (3.0, 0.0)]);
        let s = simplify(&line, 0.01);
        assert_eq!(s.num_coords(), 2);
        assert_eq!(s.coords()[0], Coord::new(0.0, 0.0));
        assert_eq!(s.coords()[1], Coord::new(3.0, 0.0));
    }

    #[test]
    fn significant_corner_is_kept() {
        let line = ls(&[(0.0, 0.0), (5.0, 5.0), (10.0, 0.0)]);
        let s = simplify(&line, 1.0);
        assert_eq!(s.num_coords(), 3, "the apex is 5 units off the chord");
        let s = simplify(&line, 6.0);
        assert_eq!(s.num_coords(), 2, "a loose tolerance drops the apex");
    }

    #[test]
    fn zero_tolerance_keeps_noncollinear_points() {
        let line = ls(&[(0.0, 0.0), (1.0, 0.1), (2.0, 0.0)]);
        let s = simplify(&line, 0.0);
        assert_eq!(s.num_coords(), 3);
    }

    #[test]
    fn simplified_stays_within_tolerance() {
        // noisy sine-ish wiggle
        let pts: Vec<(f64, f64)> =
            (0..100).map(|i| (i as f64 * 0.1, (i as f64 * 0.6).sin() * 0.5)).collect();
        let line = ls(&pts);
        let tol = 0.2;
        let s = simplify(&line, tol);
        assert!(s.num_coords() < line.num_coords());
        // every dropped vertex is within `tol` of the simplified chain
        for c in line.coords() {
            let d = s
                .segments()
                .map(|(a, b)| point_segment_distance(c, a, b))
                .fold(f64::INFINITY, f64::min);
            assert!(d <= tol + 1e-9, "vertex {c} is {d} away");
        }
    }

    #[test]
    fn two_point_line_unchanged() {
        let line = ls(&[(0.0, 0.0), (1.0, 1.0)]);
        assert_eq!(simplify(&line, 100.0).num_coords(), 2);
    }
}
