//! Geometry validity checks.
//!
//! The paper's §3 observes that some competing systems "have serious bugs
//! and produce wrong results"; validity checking on ingest is the first
//! line of defence. These checks classify the structural problems that
//! make predicate results undefined (self-intersecting rings, holes
//! outside their shell).

use crate::algorithms::point_in_polygon::{locate_in_ring, PointLocation};
use crate::algorithms::segment::{point_on_segment, segments_cross_properly};
use crate::geometry::Geometry;
use crate::linestring::LineString;
use crate::polygon::{Polygon, Ring};

/// A structural defect found by [`validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidityError {
    /// Two non-adjacent ring segments cross.
    SelfIntersection { ring: usize, segment_a: usize, segment_b: usize },
    /// The ring encloses no area.
    ZeroAreaRing { ring: usize },
    /// A hole has a vertex strictly outside the exterior ring.
    HoleOutsideShell { hole: usize },
    /// Two consecutive linestring vertices coincide.
    RepeatedPoint { index: usize },
}

impl std::fmt::Display for ValidityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidityError::SelfIntersection { ring, segment_a, segment_b } => {
                write!(f, "ring {ring}: segments {segment_a} and {segment_b} cross")
            }
            ValidityError::ZeroAreaRing { ring } => write!(f, "ring {ring} encloses no area"),
            ValidityError::HoleOutsideShell { hole } => {
                write!(f, "hole {hole} lies outside the exterior ring")
            }
            ValidityError::RepeatedPoint { index } => {
                write!(f, "repeated consecutive point at index {index}")
            }
        }
    }
}

/// Whether a ring is *simple*: no two non-adjacent segments touch or
/// cross. O(n²) segment pairing — rings in event data are small.
fn ring_self_intersections(ring: &Ring, ring_idx: usize, out: &mut Vec<ValidityError>) {
    let segs: Vec<_> = ring.segments().collect();
    let n = segs.len();
    for i in 0..n {
        for j in (i + 1)..n {
            // adjacent segments share an endpoint by construction; the
            // first and last segments are adjacent through the closure
            let adjacent = j == i + 1 || (i == 0 && j == n - 1);
            let (a1, a2) = segs[i];
            let (b1, b2) = segs[j];
            if adjacent {
                continue;
            }
            if segments_cross_properly(a1, a2, b1, b2)
                || point_on_segment(b1, a1, a2)
                || point_on_segment(b2, a1, a2)
            {
                out.push(ValidityError::SelfIntersection {
                    ring: ring_idx,
                    segment_a: i,
                    segment_b: j,
                });
            }
        }
    }
}

fn validate_polygon(p: &Polygon, out: &mut Vec<ValidityError>) {
    for (idx, ring) in p.rings().enumerate() {
        if ring.area() < f64::EPSILON {
            out.push(ValidityError::ZeroAreaRing { ring: idx });
        }
        ring_self_intersections(ring, idx, out);
    }
    for (h, hole) in p.holes().iter().enumerate() {
        let outside = hole
            .coords_open()
            .iter()
            .any(|c| locate_in_ring(c, p.exterior()) == PointLocation::Exterior);
        if outside {
            out.push(ValidityError::HoleOutsideShell { hole: h });
        }
    }
}

fn validate_linestring(l: &LineString, out: &mut Vec<ValidityError>) {
    for (i, w) in l.coords().windows(2).enumerate() {
        if w[0].approx_eq(&w[1]) {
            out.push(ValidityError::RepeatedPoint { index: i });
        }
    }
}

/// Collects all structural defects of a geometry; empty = valid.
pub fn validate(g: &Geometry) -> Vec<ValidityError> {
    let mut out = Vec::new();
    match g {
        Geometry::Point(_) | Geometry::MultiPoint(_) => {}
        Geometry::LineString(l) => validate_linestring(l, &mut out),
        Geometry::MultiLineString(ls) => ls.iter().for_each(|l| validate_linestring(l, &mut out)),
        Geometry::Polygon(p) => validate_polygon(p, &mut out),
        Geometry::MultiPolygon(ps) => ps.iter().for_each(|p| validate_polygon(p, &mut out)),
    }
    out
}

/// Whether the geometry has no structural defects.
pub fn is_valid(g: &Geometry) -> bool {
    validate(g).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wkt(s: &str) -> Geometry {
        Geometry::from_wkt(s).unwrap()
    }

    #[test]
    fn simple_shapes_are_valid() {
        assert!(is_valid(&wkt("POINT(1 2)")));
        assert!(is_valid(&wkt("LINESTRING(0 0, 1 1, 2 0)")));
        assert!(is_valid(&wkt("POLYGON((0 0, 4 0, 4 4, 0 4, 0 0))")));
        assert!(is_valid(&wkt(
            "POLYGON((0 0, 10 0, 10 10, 0 10, 0 0), (2 2, 4 2, 4 4, 2 4, 2 2))"
        )));
    }

    #[test]
    fn bowtie_is_self_intersecting() {
        // figure-eight: segments (0,0)-(4,4) and (4,0)-(0,4) cross
        let g = wkt("POLYGON((0 0, 4 4, 4 0, 0 4, 0 0))");
        let errors = validate(&g);
        assert!(
            errors.iter().any(|e| matches!(e, ValidityError::SelfIntersection { .. })),
            "{errors:?}"
        );
        assert!(!is_valid(&g));
    }

    #[test]
    fn zero_area_ring_detected() {
        let g = wkt("POLYGON((0 0, 2 2, 4 4))"); // collinear
        assert!(validate(&g).iter().any(|e| matches!(e, ValidityError::ZeroAreaRing { .. })));
    }

    #[test]
    fn hole_outside_shell_detected() {
        let g = wkt("POLYGON((0 0, 4 0, 4 4, 0 4, 0 0), (10 10, 12 10, 12 12, 10 12, 10 10))");
        let errors = validate(&g);
        assert!(errors.iter().any(|e| matches!(e, ValidityError::HoleOutsideShell { hole: 0 })));
    }

    #[test]
    fn repeated_linestring_points_detected() {
        let g = wkt("LINESTRING(0 0, 1 1, 1 1, 2 2)");
        assert_eq!(validate(&g), vec![ValidityError::RepeatedPoint { index: 1 }]);
    }

    #[test]
    fn multipolygon_reports_member_defects() {
        let g = wkt("MULTIPOLYGON(((0 0, 1 0, 1 1, 0 1, 0 0)), ((5 5, 9 9, 9 5, 5 9, 5 5)))");
        assert!(!is_valid(&g));
    }

    #[test]
    fn error_display() {
        let e = ValidityError::SelfIntersection { ring: 0, segment_a: 1, segment_b: 3 };
        assert!(e.to_string().contains("segments 1 and 3"));
    }
}
