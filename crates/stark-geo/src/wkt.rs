//! Well-Known Text reader and writer.
//!
//! Supports the geometry kinds of [`Geometry`]: `POINT`, `MULTIPOINT`,
//! `LINESTRING`, `MULTILINESTRING`, `POLYGON`, `MULTIPOLYGON`. Multi
//! geometries accept `EMPTY`. Parsing is case-insensitive and tolerant of
//! whitespace; `MULTIPOINT` accepts both the parenthesised
//! (`MULTIPOINT((1 1), (2 2))`) and the bare (`MULTIPOINT(1 1, 2 2)`)
//! member forms.

use crate::coord::Coord;
use crate::error::GeoError;
use crate::geometry::Geometry;
use crate::linestring::LineString;
use crate::point::Point;
use crate::polygon::{Polygon, Ring};

/// Parses a WKT string into a [`Geometry`].
pub fn parse_wkt(input: &str) -> Result<Geometry, GeoError> {
    let mut p = Parser::new(input);
    let geom = p.parse_geometry()?;
    p.skip_ws();
    if !p.at_end() {
        return Err(p.err("trailing characters after geometry"));
    }
    Ok(geom)
}

/// Serialises a [`Geometry`] to canonical WKT.
pub fn write_wkt(g: &Geometry) -> String {
    let mut out = String::with_capacity(32);
    match g {
        Geometry::Point(p) => {
            out.push_str("POINT (");
            write_coord(&mut out, p.coord());
            out.push(')');
        }
        Geometry::MultiPoint(ps) => {
            if ps.is_empty() {
                return "MULTIPOINT EMPTY".to_string();
            }
            out.push_str("MULTIPOINT (");
            for (i, p) in ps.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push('(');
                write_coord(&mut out, p.coord());
                out.push(')');
            }
            out.push(')');
        }
        Geometry::LineString(l) => {
            out.push_str("LINESTRING ");
            write_coord_seq(&mut out, l.coords());
        }
        Geometry::MultiLineString(ls) => {
            if ls.is_empty() {
                return "MULTILINESTRING EMPTY".to_string();
            }
            out.push_str("MULTILINESTRING (");
            for (i, l) in ls.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_coord_seq(&mut out, l.coords());
            }
            out.push(')');
        }
        Geometry::Polygon(p) => {
            out.push_str("POLYGON ");
            write_polygon_body(&mut out, p);
        }
        Geometry::MultiPolygon(ps) => {
            if ps.is_empty() {
                return "MULTIPOLYGON EMPTY".to_string();
            }
            out.push_str("MULTIPOLYGON (");
            for (i, p) in ps.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_polygon_body(&mut out, p);
            }
            out.push(')');
        }
    }
    out
}

fn write_coord(out: &mut String, c: &Coord) {
    out.push_str(&format_num(c.x));
    out.push(' ');
    out.push_str(&format_num(c.y));
}

fn format_num(v: f64) -> String {
    // Render integral values without the trailing ".0" for compactness,
    // mirroring common WKT emitters.
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn write_coord_seq(out: &mut String, coords: &[Coord]) {
    out.push('(');
    for (i, c) in coords.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        write_coord(out, c);
    }
    out.push(')');
}

fn write_polygon_body(out: &mut String, p: &Polygon) {
    out.push('(');
    for (i, ring) in p.rings().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        write_coord_seq(out, ring.coords_closed());
    }
    out.push(')');
}

struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser { input, bytes: input.as_bytes(), pos: 0 }
    }

    fn err(&self, msg: &str) -> GeoError {
        GeoError::WktParse { message: msg.to_string(), position: self.pos }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, ch: u8) -> Result<(), GeoError> {
        self.skip_ws();
        if self.peek() == Some(ch) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", ch as char)))
        }
    }

    fn try_consume(&mut self, ch: u8) -> bool {
        self.skip_ws();
        if self.peek() == Some(ch) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn read_word(&mut self) -> String {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_alphabetic() {
            self.pos += 1;
        }
        self.input[start..self.pos].to_ascii_uppercase()
    }

    /// Peeks the next keyword without consuming it.
    fn peek_word(&mut self) -> String {
        let save = self.pos;
        let w = self.read_word();
        self.pos = save;
        w
    }

    fn read_number(&mut self) -> Result<f64, GeoError> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            if b.is_ascii_digit() || b == b'-' || b == b'+' || b == b'.' || b == b'e' || b == b'E' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if start == self.pos {
            return Err(self.err("expected number"));
        }
        self.input[start..self.pos]
            .parse::<f64>()
            .map_err(|e| self.err(&format!("bad number: {e}")))
    }

    fn read_coord(&mut self) -> Result<Coord, GeoError> {
        let x = self.read_number()?;
        let y = self.read_number()?;
        let c = Coord::new(x, y);
        if !c.is_finite() {
            return Err(self.err("non-finite coordinate"));
        }
        Ok(c)
    }

    fn read_coord_seq(&mut self) -> Result<Vec<Coord>, GeoError> {
        self.expect(b'(')?;
        let mut coords = vec![self.read_coord()?];
        while self.try_consume(b',') {
            coords.push(self.read_coord()?);
        }
        self.expect(b')')?;
        Ok(coords)
    }

    fn is_empty_tag(&mut self) -> bool {
        if self.peek_word() == "EMPTY" {
            self.read_word();
            true
        } else {
            false
        }
    }

    fn parse_geometry(&mut self) -> Result<Geometry, GeoError> {
        let tag = self.read_word();
        match tag.as_str() {
            "POINT" => {
                self.expect(b'(')?;
                let c = self.read_coord()?;
                self.expect(b')')?;
                Ok(Geometry::Point(Point(c)))
            }
            "MULTIPOINT" => {
                if self.is_empty_tag() {
                    return Ok(Geometry::MultiPoint(Vec::new()));
                }
                self.expect(b'(')?;
                let mut pts = Vec::new();
                loop {
                    // each member may be parenthesised or bare
                    let c = if self.try_consume(b'(') {
                        let c = self.read_coord()?;
                        self.expect(b')')?;
                        c
                    } else {
                        self.read_coord()?
                    };
                    pts.push(Point(c));
                    if !self.try_consume(b',') {
                        break;
                    }
                }
                self.expect(b')')?;
                Ok(Geometry::MultiPoint(pts))
            }
            "LINESTRING" => {
                let coords = self.read_coord_seq()?;
                let ls = LineString::new(coords).map_err(|e| self.err(&e.to_string()))?;
                Ok(Geometry::LineString(ls))
            }
            "MULTILINESTRING" => {
                if self.is_empty_tag() {
                    return Ok(Geometry::MultiLineString(Vec::new()));
                }
                self.expect(b'(')?;
                let mut members = Vec::new();
                loop {
                    let coords = self.read_coord_seq()?;
                    members.push(LineString::new(coords).map_err(|e| self.err(&e.to_string()))?);
                    if !self.try_consume(b',') {
                        break;
                    }
                }
                self.expect(b')')?;
                Ok(Geometry::MultiLineString(members))
            }
            "POLYGON" => Ok(Geometry::Polygon(self.parse_polygon_body()?)),
            "MULTIPOLYGON" => {
                if self.is_empty_tag() {
                    return Ok(Geometry::MultiPolygon(Vec::new()));
                }
                self.expect(b'(')?;
                let mut members = Vec::new();
                loop {
                    members.push(self.parse_polygon_body()?);
                    if !self.try_consume(b',') {
                        break;
                    }
                }
                self.expect(b')')?;
                Ok(Geometry::MultiPolygon(members))
            }
            "" => Err(self.err("expected geometry tag")),
            other => Err(self.err(&format!("unknown geometry type '{other}'"))),
        }
    }

    fn parse_polygon_body(&mut self) -> Result<Polygon, GeoError> {
        self.expect(b'(')?;
        let exterior = Ring::new(self.read_coord_seq()?).map_err(|e| self.err(&e.to_string()))?;
        let mut holes = Vec::new();
        while self.try_consume(b',') {
            holes.push(Ring::new(self.read_coord_seq()?).map_err(|e| self.err(&e.to_string()))?);
        }
        self.expect(b')')?;
        Ok(Polygon::new(exterior, holes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_point() {
        let g = parse_wkt("POINT(1.5 -2)").unwrap();
        assert_eq!(g, Geometry::point(1.5, -2.0));
        // case-insensitive with padding
        let g = parse_wkt("  point ( 1.5   -2 )  ").unwrap();
        assert_eq!(g, Geometry::point(1.5, -2.0));
    }

    #[test]
    fn parse_scientific_notation() {
        let g = parse_wkt("POINT(1e3 -2.5E-2)").unwrap();
        assert_eq!(g, Geometry::point(1000.0, -0.025));
    }

    #[test]
    fn parse_linestring() {
        let g = parse_wkt("LINESTRING(0 0, 1 1, 2 0)").unwrap();
        match &g {
            Geometry::LineString(l) => assert_eq!(l.num_coords(), 3),
            _ => panic!("wrong kind"),
        }
    }

    #[test]
    fn parse_polygon_with_hole() {
        let g =
            parse_wkt("POLYGON((0 0, 10 0, 10 10, 0 10, 0 0), (2 2, 4 2, 4 4, 2 4, 2 2))").unwrap();
        match &g {
            Geometry::Polygon(p) => {
                assert_eq!(p.holes().len(), 1);
                assert_eq!(p.area(), 100.0 - 4.0);
            }
            _ => panic!("wrong kind"),
        }
    }

    #[test]
    fn parse_unclosed_ring_is_closed() {
        let g = parse_wkt("POLYGON((0 0, 4 0, 4 4, 0 4))").unwrap();
        match &g {
            Geometry::Polygon(p) => assert_eq!(p.area(), 16.0),
            _ => panic!("wrong kind"),
        }
    }

    #[test]
    fn parse_multi_variants() {
        assert!(matches!(
            parse_wkt("MULTIPOINT((1 1), (2 2))").unwrap(),
            Geometry::MultiPoint(ref v) if v.len() == 2
        ));
        assert!(matches!(
            parse_wkt("MULTIPOINT(1 1, 2 2, 3 3)").unwrap(),
            Geometry::MultiPoint(ref v) if v.len() == 3
        ));
        assert!(matches!(
            parse_wkt("MULTILINESTRING((0 0, 1 1), (2 2, 3 3))").unwrap(),
            Geometry::MultiLineString(ref v) if v.len() == 2
        ));
        assert!(matches!(
            parse_wkt("MULTIPOLYGON(((0 0, 1 0, 1 1)), ((5 5, 6 5, 6 6)))").unwrap(),
            Geometry::MultiPolygon(ref v) if v.len() == 2
        ));
        assert!(
            matches!(parse_wkt("MULTIPOINT EMPTY").unwrap(), Geometry::MultiPoint(ref v) if v.is_empty())
        );
        assert!(
            matches!(parse_wkt("MULTIPOLYGON EMPTY").unwrap(), Geometry::MultiPolygon(ref v) if v.is_empty())
        );
    }

    #[test]
    fn parse_errors() {
        assert!(parse_wkt("").is_err());
        assert!(parse_wkt("CIRCLE(0 0, 5)").is_err());
        assert!(parse_wkt("POINT(1)").is_err());
        assert!(parse_wkt("POINT(1 2").is_err());
        assert!(parse_wkt("POINT(1 2) garbage").is_err());
        assert!(parse_wkt("LINESTRING(0 0)").is_err());
        assert!(parse_wkt("POLYGON((0 0, 1 1))").is_err());
        assert!(parse_wkt("POINT(nan nan)").is_err());
    }

    #[test]
    fn roundtrip_canonical() {
        let cases = [
            "POINT (1 2)",
            "POINT (1.5 -2.25)",
            "LINESTRING (0 0, 1 1, 2 0)",
            "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))",
            "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (2 2, 4 2, 4 4, 2 4, 2 2))",
            "MULTIPOINT ((1 1), (2 2))",
            "MULTILINESTRING ((0 0, 1 1), (2 2, 3 3))",
            "MULTIPOLYGON (((0 0, 1 0, 1 1, 0 0)), ((5 5, 6 5, 6 6, 5 5)))",
            "MULTIPOINT EMPTY",
        ];
        for case in cases {
            let g = parse_wkt(case).unwrap();
            assert_eq!(write_wkt(&g), case, "canonical form mismatch");
            // parsing the emitted form yields the same geometry
            assert_eq!(parse_wkt(&write_wkt(&g)).unwrap(), g);
        }
    }

    #[test]
    fn error_position_is_reported() {
        match parse_wkt("POINT(1 x)") {
            Err(GeoError::WktParse { position, .. }) => assert_eq!(position, 8),
            other => panic!("expected parse error, got {other:?}"),
        }
    }
}
