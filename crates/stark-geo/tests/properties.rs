//! Property-based tests for the geometry kernel.

use proptest::prelude::*;
use stark_geo::{Coord, DistanceFn, Envelope, Geometry};

fn coord_strategy() -> impl Strategy<Value = Coord> {
    (-1000.0f64..1000.0, -1000.0f64..1000.0).prop_map(|(x, y)| Coord::new(x, y))
}

fn point_strategy() -> impl Strategy<Value = Geometry> {
    coord_strategy().prop_map(|c| Geometry::point(c.x, c.y))
}

fn rect_strategy() -> impl Strategy<Value = Geometry> {
    (coord_strategy(), 0.1f64..500.0, 0.1f64..500.0)
        .prop_map(|(c, w, h)| Geometry::rect(c.x, c.y, c.x + w, c.y + h))
}

fn linestring_strategy() -> impl Strategy<Value = Geometry> {
    proptest::collection::vec(coord_strategy(), 2..8)
        .prop_filter_map("valid linestring", |coords| {
            stark_geo::LineString::new(coords).ok().map(Geometry::LineString)
        })
}

fn geometry_strategy() -> impl Strategy<Value = Geometry> {
    prop_oneof![point_strategy(), rect_strategy(), linestring_strategy()]
}

/// (lon, lat) pairs over the whole globe, oversampling the polar caps
/// (|lat| > 85°) where the old equatorial-scale pruning bound was unsound.
fn lonlat_strategy() -> impl Strategy<Value = Coord> {
    prop_oneof![
        (-180.0f64..=180.0, -90.0f64..=90.0),
        (-180.0f64..=180.0, 85.0f64..=90.0),
        (-180.0f64..=180.0, -90.0f64..=-85.0),
    ]
    .prop_map(|(lon, lat)| Coord::new(lon, lat))
}

proptest! {
    #[test]
    fn wkt_roundtrip(g in geometry_strategy()) {
        let wkt = g.to_wkt();
        let parsed = Geometry::from_wkt(&wkt).unwrap();
        // canonical text form must be a fixed point
        prop_assert_eq!(parsed.to_wkt(), wkt);
    }

    #[test]
    fn envelope_contains_centroid_of_convex(g in prop_oneof![point_strategy(), rect_strategy()]) {
        let env = g.envelope();
        let c = g.centroid();
        prop_assert!(env.buffered(1e-9).contains_coord(&c));
    }

    #[test]
    fn intersects_symmetric(a in geometry_strategy(), b in geometry_strategy()) {
        prop_assert_eq!(a.intersects(&b), b.intersects(&a));
    }

    #[test]
    fn distance_symmetric_and_consistent(a in geometry_strategy(), b in geometry_strategy()) {
        let dab = a.distance(&b);
        let dba = b.distance(&a);
        prop_assert!((dab - dba).abs() < 1e-9, "{dab} vs {dba}");
        if a.intersects(&b) {
            prop_assert!(dab < 1e-9, "intersecting but distance {dab}");
        } else {
            prop_assert!(dab >= 0.0);
        }
    }

    #[test]
    fn self_relations(g in geometry_strategy()) {
        prop_assert!(g.intersects(&g));
        prop_assert!(g.contains(&g));
        prop_assert!(g.contained_by(&g));
        prop_assert!(g.distance(&g) < 1e-9);
    }

    #[test]
    fn contains_implies_intersects(a in rect_strategy(), b in geometry_strategy()) {
        if a.contains(&b) {
            prop_assert!(a.intersects(&b));
            // containment also implies envelope containment
            prop_assert!(a.envelope().contains_envelope(&b.envelope()));
        }
    }

    #[test]
    fn rect_contains_its_interior_points(
        (min_x, min_y) in (-100.0f64..100.0, -100.0f64..100.0),
        (w, h) in (1.0f64..50.0, 1.0f64..50.0),
        (fx, fy) in (0.0f64..=1.0, 0.0f64..=1.0),
    ) {
        let r = Geometry::rect(min_x, min_y, min_x + w, min_y + h);
        let p = Geometry::point(min_x + fx * w, min_y + fy * h);
        prop_assert!(r.contains(&p));
        prop_assert!(r.intersects(&p));
        prop_assert!(p.contained_by(&r));
    }

    #[test]
    fn rect_excludes_outside_points(
        (min_x, min_y) in (-100.0f64..100.0, -100.0f64..100.0),
        (w, h) in (1.0f64..50.0, 1.0f64..50.0),
        off in 0.001f64..100.0,
    ) {
        let r = Geometry::rect(min_x, min_y, min_x + w, min_y + h);
        let p = Geometry::point(min_x + w + off, min_y);
        prop_assert!(!r.contains(&p));
        prop_assert!(!r.intersects(&p));
        // distance to the rect equals the horizontal offset
        prop_assert!((r.distance(&p) - off).abs() < 1e-9);
    }

    #[test]
    fn envelope_union_covers_both(a in rect_strategy(), b in rect_strategy()) {
        let u = a.envelope().union(&b.envelope());
        prop_assert!(u.contains_envelope(&a.envelope()));
        prop_assert!(u.contains_envelope(&b.envelope()));
    }

    #[test]
    fn envelope_intersection_within_both(a in rect_strategy(), b in rect_strategy()) {
        if let Some(i) = a.envelope().intersection(&b.envelope()) {
            prop_assert!(a.envelope().contains_envelope(&i));
            prop_assert!(b.envelope().contains_envelope(&i));
        } else {
            prop_assert!(!a.envelope().intersects(&b.envelope()));
        }
    }

    #[test]
    fn envelope_distance_lower_bounds_geometry_distance(
        a in geometry_strategy(),
        b in geometry_strategy(),
    ) {
        let env_d = a.envelope().distance(&b.envelope());
        let d = a.distance(&b);
        prop_assert!(env_d <= d + 1e-9, "env {env_d} > true {d}");
    }

    #[test]
    fn manhattan_dominates_euclidean_for_points(a in point_strategy(), b in point_strategy()) {
        let e = DistanceFn::Euclidean.distance(&a, &b);
        let m = DistanceFn::Manhattan.distance(&a, &b);
        prop_assert!(m + 1e-9 >= e);
        prop_assert!(m <= e * 2f64.sqrt() + 1e-9);
    }

    #[test]
    fn haversine_triangle_inequality(
        a in (-179.0f64..179.0, -89.0f64..89.0),
        b in (-179.0f64..179.0, -89.0f64..89.0),
        c in (-179.0f64..179.0, -89.0f64..89.0),
    ) {
        let pa = Coord::new(a.0, a.1);
        let pb = Coord::new(b.0, b.1);
        let pc = Coord::new(c.0, c.1);
        let ab = stark_geo::haversine(&pa, &pb);
        let bc = stark_geo::haversine(&pb, &pc);
        let ac = stark_geo::haversine(&pa, &pc);
        prop_assert!(ac <= ab + bc + 1e-3);
    }

    #[test]
    fn haversine_axis_gap_bound_is_sound(a in lonlat_strategy(), b in lonlat_strategy()) {
        let true_d = stark_geo::haversine(&a, &b);
        prop_assert!(true_d.is_finite(), "haversine returned {true_d}");
        let dx = (a.x - b.x).abs();
        let dy = (a.y - b.y).abs();
        let bound = DistanceFn::Haversine.lower_bound_from_axis_gaps(dx, dy);
        prop_assert!(bound <= true_d + 1e-6, "bound {bound} > true {true_d} for {a:?}/{b:?}");
    }

    #[test]
    fn envelope_axis_gaps_lower_bound_haversine(
        a in lonlat_strategy(),
        b in lonlat_strategy(),
        (w, h) in (0.0f64..5.0, 0.0f64..2.0),
    ) {
        // A point inside an envelope is never closer to a query point
        // than the per-axis-gap bound claims.
        let env = Envelope::from_bounds(
            a.x, a.y,
            (a.x + w).min(180.0), (a.y + h).min(90.0),
        );
        let q = Envelope::from_point(b);
        let (dx, dy) = env.axis_distances(&q);
        let bound = DistanceFn::Haversine.lower_bound_from_axis_gaps(dx, dy);
        let true_d = stark_geo::haversine(&a, &b);
        prop_assert!(bound <= true_d + 1e-6, "bound {bound} > true {true_d}");
    }

    #[test]
    fn envelope_buffer_monotone(r in rect_strategy(), m in 0.0f64..10.0) {
        let e = r.envelope();
        let buffered = e.buffered(m);
        prop_assert!(buffered.contains_envelope(&e));
        prop_assert!((buffered.width() - (e.width() + 2.0 * m)).abs() < 1e-9);
    }
}

#[test]
fn empty_envelope_edge_cases() {
    let e = Envelope::empty();
    assert!(e.is_empty());
    assert_eq!(e.area(), 0.0);
    assert!(!e.contains_envelope(&e));
}
