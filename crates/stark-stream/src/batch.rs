//! Micro-batch and per-batch metric types.

use std::time::Duration;

/// Monotone batch sequence number, assigned by the source pump.
pub type BatchId = u64;

/// One micro-batch pulled from a [`crate::Source`].
///
/// Records ride in a shared [`stark_engine::Partition`], so handing the
/// batch from the pump thread to the driver — and from the driver into
/// the window manager and query engine — never deep-copies the payload.
#[derive(Debug, Clone)]
pub struct MicroBatch<V> {
    pub id: BatchId,
    pub records: stark_engine::Partition<(stark::STObject, V)>,
    /// Records the source retracts this batch (upstream corrections).
    /// Empty for plain insert-only sources.
    pub retracts: stark_engine::Partition<(stark::STObject, V)>,
}

/// Per-batch processing metrics, extending the engine's job counters
/// with the stream-level numbers the paper's demonstration surfaces.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchMetrics {
    pub batch: BatchId,
    /// Records in the batch.
    pub records: u64,
    /// Late records discarded this batch.
    pub late_dropped: u64,
    /// Wall-clock time to process the batch end to end.
    pub latency: Duration,
    /// Records per second for this batch (`records / latency`).
    pub events_per_sec: f64,
    /// Channel occupancy observed after pulling the batch (saturation).
    pub queue_depth: usize,
    /// Index partitions this batch's records landed in.
    pub partitions_touched: usize,
    /// Index partition trees rebuilt for this batch.
    pub partitions_rebuilt: usize,
    /// Window panes fired while processing this batch.
    pub windows_fired: u64,
    /// Upstream retraction records applied this batch (timely ones,
    /// routed to open panes / standing state; membership-checked no-ops
    /// included). 0 for insert-only streams.
    pub records_retracted: u64,
    /// Retraction events emitted downstream this batch: one per window
    /// the watermark expired on the incremental path, plus every
    /// retracted pair in a standing join's delta emission. 0 on the
    /// pure recompute path — it re-emits full results instead of
    /// correcting them, so any nonzero value there is double-emission.
    pub retractions_emitted: u64,
    /// Extra pane-aggregation attempts consumed by batch-level retry
    /// (0 = clean batch). On top of the engine's own per-task retries.
    pub aggregation_retries: u32,
    /// Event-time watermark after observing this batch (`None` when the
    /// job has no windows). Monotone across batches: load shedding drops
    /// whole batches or thins records *before* they are observed, so it
    /// can hold the watermark still but never move it backward.
    pub watermark: Option<i64>,
    /// Whether processing failed permanently (retry budget spent); the
    /// batch's window observations still stand, only the failed pane
    /// aggregation output is missing.
    pub failed: bool,
}

/// Whole-run roll-up returned by [`crate::StreamContext::run`].
#[derive(Debug, Clone, Default)]
pub struct StreamReport {
    pub batches: Vec<BatchMetrics>,
    /// Wall-clock span of the run, including source wait time.
    pub elapsed: Duration,
    /// The source panicked mid-pump; the stream ended early but cleanly.
    pub source_disconnected: bool,
    /// The driver stopped on a permanently failed batch
    /// ([`crate::BatchFailurePolicy::Abort`]).
    pub aborted: bool,
    /// Event-time watermark when the stream ended. A pure function of
    /// the observed events — batch retries must not move it.
    pub final_watermark: Option<i64>,
    /// Records dropped by the configured [`crate::ShedPolicy`] before
    /// reaching the driver (whole displaced batches plus sampled-out
    /// records). `records sent - records_shed = records processed`.
    pub records_shed: u64,
    /// Whole batches displaced unprocessed by
    /// [`crate::ShedPolicy::DropOldest`].
    pub batches_shed: u64,
    /// Malformed inputs the source diverted to its dead-letter
    /// quarantine instead of panicking the pump (unparseable WKT lines,
    /// corrupt recorded batches). Quarantined records never reach the
    /// driver, so they count toward neither `total_records` nor the
    /// watermark.
    pub records_quarantined: u64,
}

impl StreamReport {
    pub fn total_records(&self) -> u64 {
        self.batches.iter().map(|b| b.records).sum()
    }

    pub fn late_dropped(&self) -> u64 {
        self.batches.iter().map(|b| b.late_dropped).sum()
    }

    /// Upstream retraction records applied across the run.
    pub fn records_retracted(&self) -> u64 {
        self.batches.iter().map(|b| b.records_retracted).sum()
    }

    /// Retraction events emitted downstream across the run.
    pub fn retractions_emitted(&self) -> u64 {
        self.batches.iter().map(|b| b.retractions_emitted).sum()
    }

    /// Extra pane-aggregation attempts spent by batch-level retry.
    pub fn aggregation_retries(&self) -> u64 {
        self.batches.iter().map(|b| b.aggregation_retries as u64).sum()
    }

    /// Batches whose processing failed permanently.
    pub fn batches_failed(&self) -> u64 {
        self.batches.iter().filter(|b| b.failed).count() as u64
    }

    pub fn windows_fired(&self) -> u64 {
        self.batches.iter().map(|b| b.windows_fired).sum()
    }

    /// Total in-processing time (sum of per-batch latencies).
    pub fn processing_time(&self) -> Duration {
        self.batches.iter().map(|b| b.latency).sum()
    }

    /// Mean per-batch latency.
    pub fn mean_latency(&self) -> Duration {
        match self.batches.len() {
            0 => Duration::ZERO,
            n => self.processing_time() / n as u32,
        }
    }

    /// Worst per-batch latency.
    pub fn max_latency(&self) -> Duration {
        self.batches.iter().map(|b| b.latency).max().unwrap_or(Duration::ZERO)
    }

    /// Sustained throughput over processing time (records/second).
    pub fn events_per_sec(&self) -> f64 {
        let secs = self.processing_time().as_secs_f64();
        if secs > 0.0 {
            self.total_records() as f64 / secs
        } else {
            0.0
        }
    }
}
