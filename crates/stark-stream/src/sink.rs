//! Stream output sinks.

use crate::batch::{BatchId, BatchMetrics};
use crate::graph::JoinEmission;
use crate::query::QueryResult;
use stark::{CellStats, STObject};
use stark_engine::Data;
use std::sync::{Arc, Mutex, MutexGuard};

/// Aggregates computed over one fired window pane.
#[derive(Debug, Clone)]
pub struct WindowAggregate {
    pub start: i64,
    pub end: i64,
    /// Records in the pane.
    pub count: u64,
    /// Non-empty grid cells, when grid aggregation is configured.
    pub grid: Vec<CellStats>,
    /// DBSCAN clusters found, when hotspot detection is configured.
    pub hotspot_clusters: u64,
}

/// Emitted by the incremental path when the watermark expires a window:
/// downstream state holding the window's contribution should evict it.
/// Exactly one retraction is emitted per expired window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowRetraction {
    pub start: i64,
    pub end: i64,
    /// Records the expired window held when it was finalized.
    pub count: u64,
}

/// Receives stream outputs as they are produced. All methods default to
/// no-ops so a sink implements only what it consumes.
pub trait Sink<V: Data> {
    /// A window pane fired and its aggregates were computed.
    fn on_window(&mut self, _window: &WindowAggregate) {}
    /// The watermark expired a window on the incremental path.
    fn on_retraction(&mut self, _retraction: &WindowRetraction) {}
    /// A standing join produced output for a batch (the full result on
    /// the recompute path, the exact change on the incremental path).
    fn on_join(&mut self, _batch: BatchId, _emission: &JoinEmission<V>) {}
    /// Standing queries were evaluated for a batch.
    fn on_query_results(&mut self, _batch: BatchId, _results: &[QueryResult<V>]) {}
    /// Late records diverted by the side-output policy.
    fn on_late(&mut self, _records: &[(STObject, V)]) {}
    /// A batch finished processing.
    fn on_batch(&mut self, _metrics: &BatchMetrics) {}
}

/// Everything a [`MemorySink`] collected.
#[derive(Debug, Clone)]
pub struct MemorySinkState<V> {
    pub windows: Vec<WindowAggregate>,
    pub retractions: Vec<WindowRetraction>,
    pub joins: Vec<(BatchId, JoinEmission<V>)>,
    pub query_results: Vec<(BatchId, Vec<QueryResult<V>>)>,
    pub late: Vec<(STObject, V)>,
    pub batches: Vec<BatchMetrics>,
}

impl<V> Default for MemorySinkState<V> {
    fn default() -> Self {
        MemorySinkState {
            windows: Vec::new(),
            retractions: Vec::new(),
            joins: Vec::new(),
            query_results: Vec::new(),
            late: Vec::new(),
            batches: Vec::new(),
        }
    }
}

/// In-memory sink for tests and examples. Clones share state, so keep
/// one clone outside the job to inspect results after the run.
pub struct MemorySink<V> {
    state: Arc<Mutex<MemorySinkState<V>>>,
}

impl<V> Clone for MemorySink<V> {
    fn clone(&self) -> Self {
        MemorySink { state: self.state.clone() }
    }
}

impl<V> Default for MemorySink<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> MemorySink<V> {
    pub fn new() -> Self {
        MemorySink { state: Arc::new(Mutex::new(MemorySinkState::default())) }
    }

    /// Locks and exposes everything collected so far.
    pub fn state(&self) -> MutexGuard<'_, MemorySinkState<V>> {
        self.state.lock().expect("sink poisoned")
    }
}

impl<V: Data> Sink<V> for MemorySink<V> {
    fn on_window(&mut self, window: &WindowAggregate) {
        self.state().windows.push(window.clone());
    }

    fn on_retraction(&mut self, retraction: &WindowRetraction) {
        self.state().retractions.push(*retraction);
    }

    fn on_join(&mut self, batch: BatchId, emission: &JoinEmission<V>) {
        self.state().joins.push((batch, emission.clone()));
    }

    fn on_query_results(&mut self, batch: BatchId, results: &[QueryResult<V>]) {
        self.state().query_results.push((batch, results.to_vec()));
    }

    fn on_late(&mut self, records: &[(STObject, V)]) {
        self.state().late.extend(records.iter().cloned());
    }

    fn on_batch(&mut self, metrics: &BatchMetrics) {
        self.state().batches.push(metrics.clone());
    }
}
