//! Pluggable micro-batch sources.
//!
//! A [`Source`] is pulled, not pushed: the stream pump asks for the next
//! batch and blocks on the bounded channel when the consumer lags, which
//! is where backpressure comes from. Two implementations ship: a seeded
//! synthetic generator ([`GeneratorSource`]) and a replay source reading
//! recorded batches back out of the engine's object store
//! ([`ReplaySource`]).

use crate::delta::Delta;
use stark::{STObject, Temporal};
use stark_engine::{ObjectStore, StorageError};
use stark_eventsim::{Event, EventGenerator};
use stark_geo::Envelope;

/// Record payload carried by the built-in sources: `(id, category)`,
/// the value half of the paper's `(STObject, (id, ctgry))` mapping.
pub type EventPayload = (u64, String);

/// Supplies timestamped micro-batches to a [`crate::StreamContext`].
pub trait Source<V>: Send {
    /// Pulls the next batch of up to `max_records` records.
    /// `None` ends the stream.
    fn next_batch(&mut self, max_records: usize) -> Option<Vec<(STObject, V)>>;

    /// Pulls the next batch as a [`Delta`]. The stream pump calls this;
    /// insert-only sources get it for free from
    /// [`Source::next_batch`]. Sources that issue mid-stream
    /// corrections ([`DeltaVecSource`]) override it to carry
    /// retractions alongside inserts.
    fn next_delta(&mut self, max_records: usize) -> Option<Delta<V>> {
        self.next_batch(max_records).map(Delta::from_inserts)
    }

    /// Malformed inputs this source has diverted to its dead-letter
    /// quarantine instead of panicking the pump. Reported once at end of
    /// stream as [`crate::StreamReport::records_quarantined`]. Sources
    /// without a quarantine (the built-in generator, [`VecSource`])
    /// report 0.
    fn records_quarantined(&self) -> u64 {
        0
    }
}

/// Upper bound on retained quarantined inputs: the counter keeps
/// growing past it, but only the first `QUARANTINE_CAP` offending lines
/// or keys are kept for inspection, so a poisoned feed cannot grow the
/// buffer without bound.
pub const QUARANTINE_CAP: usize = 1024;

/// Bounded dead-letter buffer: counts every quarantined input, retains
/// at most [`QUARANTINE_CAP`] of them (with a note about the failure)
/// for post-run inspection.
#[derive(Debug, Default)]
pub struct Quarantine {
    kept: Vec<(String, String)>,
    total: u64,
}

impl Quarantine {
    /// Records one malformed input and why it failed.
    fn push(&mut self, input: &str, reason: impl std::fmt::Display) {
        self.total += 1;
        if self.kept.len() < QUARANTINE_CAP {
            self.kept.push((input.to_string(), reason.to_string()));
        }
    }

    /// Total quarantined inputs, including any past the retention cap.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Retained `(input, reason)` pairs, oldest first.
    pub fn entries(&self) -> &[(String, String)] {
        &self.kept
    }
}

/// Seeded synthetic event stream over a bounded space.
///
/// Event time advances `batch_span` units per batch, with each record's
/// timestamp jittered by up to `±jitter` units — deterministic per event
/// id — so consecutive batches overlap in event time and a fraction of
/// records arrive out of order (late, if the jitter exceeds the window
/// manager's allowed lateness).
pub struct GeneratorSource {
    gen: EventGenerator,
    space: Envelope,
    batches_remaining: usize,
    batch_span: i64,
    jitter: i64,
    cursor: i64,
    batch_index: u64,
    /// `Some(fraction)`: events concentrate in a moving sub-box covering
    /// `fraction` of each side, drifting across `space` batch by batch.
    hotspot: Option<f64>,
}

impl GeneratorSource {
    /// Uniform events over all of `space`.
    pub fn new(seed: u64, space: Envelope, batches: usize, batch_span: i64, jitter: i64) -> Self {
        assert!(batch_span > 0, "batch span must be positive");
        assert!(jitter >= 0, "jitter must be non-negative");
        GeneratorSource {
            gen: EventGenerator::new(seed),
            space,
            batches_remaining: batches,
            batch_span,
            jitter,
            cursor: 0,
            batch_index: 0,
            hotspot: None,
        }
    }

    /// Concentrates each batch in a sub-box covering `fraction` of each
    /// side of the space, drifting diagonally batch over batch — a
    /// regional event burst moving across the map. This is the workload
    /// where incremental index maintenance pays: each batch dirties only
    /// the partitions under the hotspot.
    pub fn with_drifting_hotspot(mut self, fraction: f64) -> Self {
        assert!(fraction > 0.0 && fraction <= 1.0, "fraction must be in (0, 1]");
        self.hotspot = Some(fraction);
        self
    }

    /// The sub-envelope batch `b` draws from (the whole space when no
    /// hotspot is configured).
    fn batch_space(&self, b: u64) -> Envelope {
        match self.hotspot {
            None => self.space,
            Some(frac) => {
                let w = self.space.width() * frac;
                let h = self.space.height() * frac;
                // irrational-ish stride so the path wraps without cycling
                let phase = |k: f64| (b as f64 * k).fract();
                let ox = self.space.min_x() + (self.space.width() - w) * phase(0.137);
                let oy = self.space.min_y() + (self.space.height() - h) * phase(0.293);
                Envelope::from_bounds(ox, oy, ox + w, oy + h)
            }
        }
    }
}

/// splitmix64 finaliser; decorrelates the per-event jitter from the id.
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl Source<EventPayload> for GeneratorSource {
    fn next_batch(&mut self, max_records: usize) -> Option<Vec<(STObject, EventPayload)>> {
        if self.batches_remaining == 0 {
            return None;
        }
        self.batches_remaining -= 1;
        let n = max_records.max(1);
        let draw_space = self.batch_space(self.batch_index);
        self.batch_index += 1;
        let events = self.gen.uniform_points(n, &draw_space);
        let base = self.cursor;
        let span = self.batch_span;
        self.cursor += span;
        Some(
            events
                .into_iter()
                .enumerate()
                .map(|(i, e)| {
                    let within = span * i as i64 / n as i64;
                    let jit = if self.jitter > 0 {
                        (mix(e.id) % (2 * self.jitter as u64 + 1)) as i64 - self.jitter
                    } else {
                        0
                    };
                    let t = base + within + jit;
                    (STObject::with_time(e.geometry, Temporal::instant(t)), (e.id, e.category))
                })
                .collect(),
        )
    }
}

/// Serves pre-built batches from memory; for tests and benchmarks
/// where the exact record sequence must be known up front.
pub struct VecSource<V> {
    batches: std::collections::VecDeque<Vec<(STObject, V)>>,
}

impl<V: Send> VecSource<V> {
    pub fn new(batches: Vec<Vec<(STObject, V)>>) -> Self {
        VecSource { batches: batches.into() }
    }
}

impl<V: Send> Source<V> for VecSource<V> {
    /// Serves the next pre-built batch verbatim (`max_records` does not
    /// re-chunk).
    fn next_batch(&mut self, _max_records: usize) -> Option<Vec<(STObject, V)>> {
        self.batches.pop_front()
    }
}

/// Serves pre-built [`Delta`]s — batches that can carry retractions —
/// from memory; the test-harness source for exercising mid-stream
/// corrections deterministically.
pub struct DeltaVecSource<V> {
    deltas: std::collections::VecDeque<Delta<V>>,
}

impl<V: Send> DeltaVecSource<V> {
    pub fn new(deltas: Vec<Delta<V>>) -> Self {
        DeltaVecSource { deltas: deltas.into() }
    }
}

impl<V: Send> Source<V> for DeltaVecSource<V> {
    /// Serves the next delta's inserts, silently dropping its
    /// retractions — only meaningful for insert-only scripts. The pump
    /// uses [`Source::next_delta`], which serves the delta whole.
    fn next_batch(&mut self, _max_records: usize) -> Option<Vec<(STObject, V)>> {
        self.deltas.pop_front().map(|d| d.inserts)
    }

    fn next_delta(&mut self, _max_records: usize) -> Option<Delta<V>> {
        self.deltas.pop_front()
    }
}

/// Parses a raw text feed of tab-separated `id \t category \t time \t
/// WKT` lines into event records — the ingestion shape of the paper's
/// textfile-to-`STObject` mapping. Malformed lines (wrong field count,
/// unparseable numbers, invalid WKT) are diverted to a bounded
/// dead-letter [`Quarantine`] instead of panicking the pump, so one
/// poison record cannot take down the stream.
pub struct WktSource {
    lines: std::collections::VecDeque<String>,
    quarantine: Quarantine,
}

impl WktSource {
    pub fn new(lines: impl IntoIterator<Item = String>) -> Self {
        WktSource { lines: lines.into_iter().collect(), quarantine: Quarantine::default() }
    }

    /// The dead-letter buffer accumulated so far.
    pub fn quarantine(&self) -> &Quarantine {
        &self.quarantine
    }

    /// Parses one feed line; `Err` carries the reason for quarantining.
    fn parse_line(line: &str) -> Result<(STObject, EventPayload), String> {
        let fields: Vec<&str> = line.split('\t').collect();
        let [id, category, time, wkt] = fields.as_slice() else {
            return Err(format!("expected 4 tab-separated fields, got {}", fields.len()));
        };
        let id: u64 = id.trim().parse().map_err(|e| format!("bad id: {e}"))?;
        let time: i64 = time.trim().parse().map_err(|e| format!("bad timestamp: {e}"))?;
        let geometry = stark_geo::wkt::parse_wkt(wkt).map_err(|e| format!("bad WKT: {e}"))?;
        Ok((
            STObject::with_time(geometry, Temporal::instant(time)),
            (id, category.trim().to_string()),
        ))
    }
}

impl Source<EventPayload> for WktSource {
    fn next_batch(&mut self, max_records: usize) -> Option<Vec<(STObject, EventPayload)>> {
        if self.lines.is_empty() {
            return None;
        }
        let mut out = Vec::new();
        while out.len() < max_records.max(1) {
            let Some(line) = self.lines.pop_front() else { break };
            match Self::parse_line(&line) {
                Ok(record) => out.push(record),
                Err(reason) => self.quarantine.push(&line, reason),
            }
        }
        // A batch whose lines all quarantined still advances the stream:
        // an empty batch is valid, `None` is reserved for exhaustion.
        Some(out)
    }

    fn records_quarantined(&self) -> u64 {
        self.quarantine.total()
    }
}

/// Replays batches previously recorded into an [`ObjectStore`] — the
/// reproduction's stand-in for re-reading a stream out of HDFS.
pub struct ReplaySource {
    store: ObjectStore,
    keys: Vec<String>,
    next: usize,
    quarantine: Quarantine,
}

impl ReplaySource {
    /// Opens every batch stored under `prefix`, in key order.
    pub fn open(store: ObjectStore, prefix: &str) -> Result<Self, StorageError> {
        let mut keys = store.list(prefix)?;
        keys.sort();
        Ok(ReplaySource { store, keys, next: 0, quarantine: Quarantine::default() })
    }

    /// Recorded batches that could not be read back (missing blob,
    /// framing/CRC corruption, undecodable payload), skipped and kept in
    /// the dead-letter buffer by key.
    pub fn quarantine(&self) -> &Quarantine {
        &self.quarantine
    }

    /// Number of recorded batches remaining.
    pub fn remaining(&self) -> usize {
        self.keys.len() - self.next
    }

    /// Records `batches` under `prefix` for later replay; keys sort in
    /// batch order.
    pub fn record(
        store: &ObjectStore,
        prefix: &str,
        batches: &[Vec<Event>],
    ) -> Result<(), StorageError> {
        for (i, batch) in batches.iter().enumerate() {
            store.put_json(&format!("{prefix}/batch-{i:06}"), batch)?;
        }
        Ok(())
    }
}

impl Source<EventPayload> for ReplaySource {
    /// Replays the next readable recorded batch verbatim (`max_records`
    /// does not re-chunk recorded batches). A blob that fails to read —
    /// deleted, CRC-corrupt, or undecodable — is quarantined by key and
    /// skipped, so one damaged recording cannot panic the pump.
    fn next_batch(&mut self, _max_records: usize) -> Option<Vec<(STObject, EventPayload)>> {
        loop {
            let key = self.keys.get(self.next)?;
            self.next += 1;
            match self.store.get_json::<Vec<Event>>(key) {
                Ok(events) => return Some(events.iter().map(Event::to_pair).collect()),
                Err(e) => self.quarantine.push(key, format!("recorded batch unreadable: {e}")),
            }
        }
    }

    fn records_quarantined(&self) -> u64 {
        self.quarantine.total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::event_time;

    fn space() -> Envelope {
        Envelope::from_bounds(0.0, 0.0, 100.0, 100.0)
    }

    #[test]
    fn generator_is_deterministic_and_advances_time() {
        let mut a = GeneratorSource::new(9, space(), 3, 1000, 50);
        let mut b = GeneratorSource::new(9, space(), 3, 1000, 50);
        let (ba, bb) = (a.next_batch(100).unwrap(), b.next_batch(100).unwrap());
        assert_eq!(ba.len(), 100);
        assert_eq!(
            ba.iter().map(|(o, _)| event_time(o)).collect::<Vec<_>>(),
            bb.iter().map(|(o, _)| event_time(o)).collect::<Vec<_>>()
        );
        // second batch sits roughly one span later
        let t1: i64 = ba.iter().filter_map(|(o, _)| event_time(o)).max().unwrap();
        let second = a.next_batch(100).unwrap();
        let t2: i64 = second.iter().filter_map(|(o, _)| event_time(o)).max().unwrap();
        assert!(t2 > t1, "event time must advance: {t1} -> {t2}");
        // exhausts after the configured number of batches
        assert!(a.next_batch(100).is_some());
        assert!(a.next_batch(100).is_none());
    }

    #[test]
    fn generator_jitter_produces_out_of_order_times() {
        let mut src = GeneratorSource::new(5, space(), 1, 1000, 100);
        let times: Vec<i64> =
            src.next_batch(200).unwrap().iter().filter_map(|(o, _)| event_time(o)).collect();
        assert!(times.windows(2).any(|w| w[0] > w[1]), "expected out-of-order timestamps");
    }

    #[test]
    fn drifting_hotspot_localises_batches() {
        let mut src = GeneratorSource::new(1, space(), 3, 1000, 0).with_drifting_hotspot(0.2);
        let mut batch_boxes = Vec::new();
        while let Some(batch) = src.next_batch(50) {
            let mut env = Envelope::empty();
            for (o, _) in &batch {
                env.expand_to_include_envelope(&o.envelope());
            }
            // each batch fits a box no bigger than the hotspot fraction
            assert!(env.width() <= space().width() * 0.2 + 1e-9);
            assert!(env.height() <= space().height() * 0.2 + 1e-9);
            batch_boxes.push(env);
        }
        assert_eq!(batch_boxes.len(), 3);
        // the hotspot moves between batches
        assert!(
            !batch_boxes[0].intersects(&batch_boxes[1])
                || !batch_boxes[1].intersects(&batch_boxes[2])
                || batch_boxes[0].center() != batch_boxes[1].center()
        );
    }

    #[test]
    fn wkt_source_parses_lines_and_quarantines_malformed_ones() {
        let lines = vec![
            "1\tconcert\t100\tPOINT(1 2)".to_string(),
            "not a record at all".to_string(),
            "2\tfair\t200\tPOINT(3 4)".to_string(),
            "x\tfair\t300\tPOINT(5 6)".to_string(),   // bad id
            "3\tfair\tlater\tPOINT(5 6)".to_string(), // bad timestamp
            "4\tfair\t400\tPOINT(oops)".to_string(),  // bad WKT
            "5\tparade\t500\tPOINT(7 8)".to_string(),
        ];
        let mut src = WktSource::new(lines);
        let mut parsed = Vec::new();
        while let Some(batch) = src.next_batch(2) {
            parsed.extend(batch);
        }
        assert_eq!(
            parsed.iter().map(|(_, (id, _))| *id).collect::<Vec<_>>(),
            vec![1, 2, 5],
            "only well-formed lines reach the stream"
        );
        assert_eq!(
            parsed.iter().filter_map(|(o, _)| event_time(o)).collect::<Vec<_>>(),
            vec![100, 200, 500]
        );
        assert_eq!(src.records_quarantined(), 4);
        let reasons: Vec<&str> =
            src.quarantine().entries().iter().map(|(_, r)| r.as_str()).collect();
        assert!(reasons[0].contains("4 tab-separated fields"), "{reasons:?}");
        assert!(reasons[1].contains("bad id"), "{reasons:?}");
        assert!(reasons[2].contains("bad timestamp"), "{reasons:?}");
        assert!(reasons[3].contains("bad WKT"), "{reasons:?}");
    }

    #[test]
    fn quarantine_retention_is_bounded_but_count_is_not() {
        let lines: Vec<String> = (0..QUARANTINE_CAP + 10).map(|i| format!("junk-{i}")).collect();
        let mut src = WktSource::new(lines);
        while src.next_batch(64).is_some() {}
        assert_eq!(src.records_quarantined(), (QUARANTINE_CAP + 10) as u64);
        assert_eq!(src.quarantine().entries().len(), QUARANTINE_CAP);
    }

    #[test]
    fn replay_quarantines_corrupt_blob_and_keeps_going() {
        let dir = std::env::temp_dir().join(format!("stark-replay-bad-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let store = ObjectStore::open(&dir).unwrap();
        let batches: Vec<Vec<Event>> = (0..3)
            .map(|b| {
                (0..4)
                    .map(|i| {
                        Event::new(
                            b * 4 + i,
                            "concert",
                            (b * 4 + i) as i64,
                            stark_geo::Geometry::point(i as f64, b as f64),
                        )
                    })
                    .collect()
            })
            .collect();
        ReplaySource::record(&store, "streams/bad", &batches).unwrap();

        // flip one payload bit of the middle recording
        let path = store.root().join("streams/bad/batch-000001");
        let mut raw = std::fs::read(&path).unwrap();
        let mid = raw.len() / 2;
        raw[mid] ^= 0x40;
        std::fs::write(&path, &raw).unwrap();

        let mut src = ReplaySource::open(store, "streams/bad").unwrap();
        let mut ids = Vec::new();
        while let Some(batch) = src.next_batch(usize::MAX) {
            ids.extend(batch.iter().map(|(_, (id, _))| *id));
        }
        assert_eq!(ids, vec![0, 1, 2, 3, 8, 9, 10, 11], "healthy recordings still replay");
        assert_eq!(src.records_quarantined(), 1);
        let (key, reason) = &src.quarantine().entries()[0];
        assert_eq!(key, "streams/bad/batch-000001");
        assert!(reason.contains("unreadable"), "{reason}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replay_roundtrip() {
        let dir = std::env::temp_dir().join(format!("stark-replay-{}", std::process::id()));
        let store = ObjectStore::open(&dir).unwrap();
        let batches: Vec<Vec<Event>> = (0..3)
            .map(|b| {
                (0..5)
                    .map(|i| {
                        Event::new(
                            b * 5 + i,
                            "concert",
                            (b * 5 + i) as i64,
                            stark_geo::Geometry::point(i as f64, b as f64),
                        )
                    })
                    .collect()
            })
            .collect();
        ReplaySource::record(&store, "streams/test", &batches).unwrap();

        let mut src = ReplaySource::open(store, "streams/test").unwrap();
        assert_eq!(src.remaining(), 3);
        let mut replayed = Vec::new();
        while let Some(batch) = src.next_batch(usize::MAX) {
            replayed.push(batch);
        }
        assert_eq!(replayed.len(), 3);
        for (orig, got) in batches.iter().zip(&replayed) {
            assert_eq!(orig.len(), got.len());
            for (e, (o, (id, cat))) in orig.iter().zip(got) {
                assert_eq!(*id, e.id);
                assert_eq!(cat, &e.category);
                assert_eq!(event_time(o), Some(e.time));
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
