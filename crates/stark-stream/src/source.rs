//! Pluggable micro-batch sources.
//!
//! A [`Source`] is pulled, not pushed: the stream pump asks for the next
//! batch and blocks on the bounded channel when the consumer lags, which
//! is where backpressure comes from. Two implementations ship: a seeded
//! synthetic generator ([`GeneratorSource`]) and a replay source reading
//! recorded batches back out of the engine's object store
//! ([`ReplaySource`]).

use stark::{STObject, Temporal};
use stark_engine::{ObjectStore, StorageError};
use stark_eventsim::{Event, EventGenerator};
use stark_geo::Envelope;

/// Record payload carried by the built-in sources: `(id, category)`,
/// the value half of the paper's `(STObject, (id, ctgry))` mapping.
pub type EventPayload = (u64, String);

/// Supplies timestamped micro-batches to a [`crate::StreamContext`].
pub trait Source<V>: Send {
    /// Pulls the next batch of up to `max_records` records.
    /// `None` ends the stream.
    fn next_batch(&mut self, max_records: usize) -> Option<Vec<(STObject, V)>>;
}

/// Seeded synthetic event stream over a bounded space.
///
/// Event time advances `batch_span` units per batch, with each record's
/// timestamp jittered by up to `±jitter` units — deterministic per event
/// id — so consecutive batches overlap in event time and a fraction of
/// records arrive out of order (late, if the jitter exceeds the window
/// manager's allowed lateness).
pub struct GeneratorSource {
    gen: EventGenerator,
    space: Envelope,
    batches_remaining: usize,
    batch_span: i64,
    jitter: i64,
    cursor: i64,
    batch_index: u64,
    /// `Some(fraction)`: events concentrate in a moving sub-box covering
    /// `fraction` of each side, drifting across `space` batch by batch.
    hotspot: Option<f64>,
}

impl GeneratorSource {
    /// Uniform events over all of `space`.
    pub fn new(seed: u64, space: Envelope, batches: usize, batch_span: i64, jitter: i64) -> Self {
        assert!(batch_span > 0, "batch span must be positive");
        assert!(jitter >= 0, "jitter must be non-negative");
        GeneratorSource {
            gen: EventGenerator::new(seed),
            space,
            batches_remaining: batches,
            batch_span,
            jitter,
            cursor: 0,
            batch_index: 0,
            hotspot: None,
        }
    }

    /// Concentrates each batch in a sub-box covering `fraction` of each
    /// side of the space, drifting diagonally batch over batch — a
    /// regional event burst moving across the map. This is the workload
    /// where incremental index maintenance pays: each batch dirties only
    /// the partitions under the hotspot.
    pub fn with_drifting_hotspot(mut self, fraction: f64) -> Self {
        assert!(fraction > 0.0 && fraction <= 1.0, "fraction must be in (0, 1]");
        self.hotspot = Some(fraction);
        self
    }

    /// The sub-envelope batch `b` draws from (the whole space when no
    /// hotspot is configured).
    fn batch_space(&self, b: u64) -> Envelope {
        match self.hotspot {
            None => self.space,
            Some(frac) => {
                let w = self.space.width() * frac;
                let h = self.space.height() * frac;
                // irrational-ish stride so the path wraps without cycling
                let phase = |k: f64| (b as f64 * k).fract();
                let ox = self.space.min_x() + (self.space.width() - w) * phase(0.137);
                let oy = self.space.min_y() + (self.space.height() - h) * phase(0.293);
                Envelope::from_bounds(ox, oy, ox + w, oy + h)
            }
        }
    }
}

/// splitmix64 finaliser; decorrelates the per-event jitter from the id.
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl Source<EventPayload> for GeneratorSource {
    fn next_batch(&mut self, max_records: usize) -> Option<Vec<(STObject, EventPayload)>> {
        if self.batches_remaining == 0 {
            return None;
        }
        self.batches_remaining -= 1;
        let n = max_records.max(1);
        let draw_space = self.batch_space(self.batch_index);
        self.batch_index += 1;
        let events = self.gen.uniform_points(n, &draw_space);
        let base = self.cursor;
        let span = self.batch_span;
        self.cursor += span;
        Some(
            events
                .into_iter()
                .enumerate()
                .map(|(i, e)| {
                    let within = span * i as i64 / n as i64;
                    let jit = if self.jitter > 0 {
                        (mix(e.id) % (2 * self.jitter as u64 + 1)) as i64 - self.jitter
                    } else {
                        0
                    };
                    let t = base + within + jit;
                    (STObject::with_time(e.geometry, Temporal::instant(t)), (e.id, e.category))
                })
                .collect(),
        )
    }
}

/// Serves pre-built batches from memory; for tests and benchmarks
/// where the exact record sequence must be known up front.
pub struct VecSource<V> {
    batches: std::collections::VecDeque<Vec<(STObject, V)>>,
}

impl<V: Send> VecSource<V> {
    pub fn new(batches: Vec<Vec<(STObject, V)>>) -> Self {
        VecSource { batches: batches.into() }
    }
}

impl<V: Send> Source<V> for VecSource<V> {
    /// Serves the next pre-built batch verbatim (`max_records` does not
    /// re-chunk).
    fn next_batch(&mut self, _max_records: usize) -> Option<Vec<(STObject, V)>> {
        self.batches.pop_front()
    }
}

/// Replays batches previously recorded into an [`ObjectStore`] — the
/// reproduction's stand-in for re-reading a stream out of HDFS.
pub struct ReplaySource {
    store: ObjectStore,
    keys: Vec<String>,
    next: usize,
}

impl ReplaySource {
    /// Opens every batch stored under `prefix`, in key order.
    pub fn open(store: ObjectStore, prefix: &str) -> Result<Self, StorageError> {
        let mut keys = store.list(prefix)?;
        keys.sort();
        Ok(ReplaySource { store, keys, next: 0 })
    }

    /// Number of recorded batches remaining.
    pub fn remaining(&self) -> usize {
        self.keys.len() - self.next
    }

    /// Records `batches` under `prefix` for later replay; keys sort in
    /// batch order.
    pub fn record(
        store: &ObjectStore,
        prefix: &str,
        batches: &[Vec<Event>],
    ) -> Result<(), StorageError> {
        for (i, batch) in batches.iter().enumerate() {
            store.put_json(&format!("{prefix}/batch-{i:06}"), batch)?;
        }
        Ok(())
    }
}

impl Source<EventPayload> for ReplaySource {
    /// Replays the next recorded batch verbatim (`max_records` does not
    /// re-chunk recorded batches).
    fn next_batch(&mut self, _max_records: usize) -> Option<Vec<(STObject, EventPayload)>> {
        let key = self.keys.get(self.next)?;
        self.next += 1;
        let events: Vec<Event> = self
            .store
            .get_json(key)
            .unwrap_or_else(|e| panic!("recorded batch {key} unreadable: {e}"));
        Some(events.iter().map(Event::to_pair).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::event_time;

    fn space() -> Envelope {
        Envelope::from_bounds(0.0, 0.0, 100.0, 100.0)
    }

    #[test]
    fn generator_is_deterministic_and_advances_time() {
        let mut a = GeneratorSource::new(9, space(), 3, 1000, 50);
        let mut b = GeneratorSource::new(9, space(), 3, 1000, 50);
        let (ba, bb) = (a.next_batch(100).unwrap(), b.next_batch(100).unwrap());
        assert_eq!(ba.len(), 100);
        assert_eq!(
            ba.iter().map(|(o, _)| event_time(o)).collect::<Vec<_>>(),
            bb.iter().map(|(o, _)| event_time(o)).collect::<Vec<_>>()
        );
        // second batch sits roughly one span later
        let t1: i64 = ba.iter().filter_map(|(o, _)| event_time(o)).max().unwrap();
        let second = a.next_batch(100).unwrap();
        let t2: i64 = second.iter().filter_map(|(o, _)| event_time(o)).max().unwrap();
        assert!(t2 > t1, "event time must advance: {t1} -> {t2}");
        // exhausts after the configured number of batches
        assert!(a.next_batch(100).is_some());
        assert!(a.next_batch(100).is_none());
    }

    #[test]
    fn generator_jitter_produces_out_of_order_times() {
        let mut src = GeneratorSource::new(5, space(), 1, 1000, 100);
        let times: Vec<i64> =
            src.next_batch(200).unwrap().iter().filter_map(|(o, _)| event_time(o)).collect();
        assert!(times.windows(2).any(|w| w[0] > w[1]), "expected out-of-order timestamps");
    }

    #[test]
    fn drifting_hotspot_localises_batches() {
        let mut src = GeneratorSource::new(1, space(), 3, 1000, 0).with_drifting_hotspot(0.2);
        let mut batch_boxes = Vec::new();
        while let Some(batch) = src.next_batch(50) {
            let mut env = Envelope::empty();
            for (o, _) in &batch {
                env.expand_to_include_envelope(&o.envelope());
            }
            // each batch fits a box no bigger than the hotspot fraction
            assert!(env.width() <= space().width() * 0.2 + 1e-9);
            assert!(env.height() <= space().height() * 0.2 + 1e-9);
            batch_boxes.push(env);
        }
        assert_eq!(batch_boxes.len(), 3);
        // the hotspot moves between batches
        assert!(
            !batch_boxes[0].intersects(&batch_boxes[1])
                || !batch_boxes[1].intersects(&batch_boxes[2])
                || batch_boxes[0].center() != batch_boxes[1].center()
        );
    }

    #[test]
    fn replay_roundtrip() {
        let dir = std::env::temp_dir().join(format!("stark-replay-{}", std::process::id()));
        let store = ObjectStore::open(&dir).unwrap();
        let batches: Vec<Vec<Event>> = (0..3)
            .map(|b| {
                (0..5)
                    .map(|i| {
                        Event::new(
                            b * 5 + i,
                            "concert",
                            (b * 5 + i) as i64,
                            stark_geo::Geometry::point(i as f64, b as f64),
                        )
                    })
                    .collect()
            })
            .collect();
        ReplaySource::record(&store, "streams/test", &batches).unwrap();

        let mut src = ReplaySource::open(store, "streams/test").unwrap();
        assert_eq!(src.remaining(), 3);
        let mut replayed = Vec::new();
        while let Some(batch) = src.next_batch(usize::MAX) {
            replayed.push(batch);
        }
        assert_eq!(replayed.len(), 3);
        for (orig, got) in batches.iter().zip(&replayed) {
            assert_eq!(orig.len(), got.len());
            for (e, (o, (id, cat))) in orig.iter().zip(got) {
                assert_eq!(*id, e.id);
                assert_eq!(cat, &e.category);
                assert_eq!(event_time(o), Some(e.time));
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
