//! The incremental operator graph: delta-based view maintenance for
//! standing joins and windowed aggregations.
//!
//! The recompute path (the paper's model, and this crate's default)
//! re-evaluates state-bearing operators from scratch whenever output is
//! due: a fired pane re-aggregates all its records through engine jobs,
//! a standing join rebuilds the right side's index and re-probes every
//! left record. The incremental path instead applies each micro-batch
//! as a [`Delta`] against maintained state:
//!
//! * [`DeltaJoin`] keeps *both* join sides in per-partition incremental
//!   STR-trees ([`IncrementalIndex`]) and probes only the delta against
//!   the opposite side's index, emitting the exact change
//!   ([`JoinEmission::Delta`]) to the standing result — O(Δ·probe)
//!   instead of O(|L|·probe) per batch.
//! * [`WindowAggregator`] maintains running per-window aggregates
//!   (count + grid cells) under inserts *and retractions*, emits each
//!   window's final aggregate the moment the watermark expires it, and
//!   emits exactly one [`WindowRetraction`] per expired window so
//!   downstream state can evict the window's contribution.
//!
//! The correctness contract is differential: for any input stream —
//! out-of-order, late, shed, retracted mid-stream — the incremental
//! path must produce byte-identical per-window results and an
//! accumulated join state identical to the recompute path
//! (`tests/ivm_differential.rs` pins this property).

use crate::delta::Delta;
use crate::sink::{WindowAggregate, WindowRetraction};
use crate::window::{event_time, LatePolicy, ObserveStats, Watermark, WindowSpec};
use stark::{CellStats, IncrementalIndex, STObject, STPredicate, SpatialPartitioner};
use stark_engine::Data;
use stark_geo::Envelope;
use std::collections::BTreeMap;
use std::sync::Arc;

/// How the stream driver executes state-bearing operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PipelineMode {
    /// Recompute from scratch whenever output is due (pane re-aggregation
    /// through engine jobs, full join re-probe). The paper's model.
    #[default]
    Recompute,
    /// Apply each batch as a delta against maintained operator state.
    Incremental,
}

/// Selects which records belong to one side of a [`DeltaJoin`].
pub type JoinSide<V> = Arc<dyn Fn(&STObject, &V) -> bool + Send + Sync>;

/// One joined pair: `(left record, right record)`.
pub type JoinPair<V> = ((STObject, V), (STObject, V));

/// Declares a standing stream-stream join. The predicate must be
/// symmetric ([`STPredicate::Intersects`] or
/// [`STPredicate::WithinDistance`]) because both execution paths probe
/// an index of one side with records of the other, evaluating
/// `pred(indexed, probe)`.
pub struct JoinSpec<V> {
    name: String,
    left: JoinSide<V>,
    right: JoinSide<V>,
    pred: STPredicate,
    partitioner: Arc<dyn SpatialPartitioner>,
    order: usize,
}

impl<V> std::fmt::Debug for JoinSpec<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JoinSpec").field("name", &self.name).field("pred", &self.pred).finish()
    }
}

impl<V> JoinSpec<V> {
    pub fn new(
        name: impl Into<String>,
        left: JoinSide<V>,
        right: JoinSide<V>,
        pred: STPredicate,
        partitioner: Arc<dyn SpatialPartitioner>,
        order: usize,
    ) -> Self {
        assert!(
            matches!(pred, STPredicate::Intersects | STPredicate::WithinDistance { .. }),
            "stream-stream joins need a symmetric predicate (Intersects or WithinDistance)"
        );
        JoinSpec { name: name.into(), left, right, pred, partitioner, order }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn predicate(&self) -> STPredicate {
        self.pred
    }
}

/// What a [`DeltaJoin`] emitted for one batch.
#[derive(Debug, Clone)]
pub enum JoinEmission<V> {
    /// The full standing result, re-emitted (recompute path).
    Full(Vec<JoinPair<V>>),
    /// The exact change to the standing result (incremental path).
    Delta { inserts: Vec<JoinPair<V>>, retracts: Vec<JoinPair<V>> },
}

impl<V> JoinEmission<V> {
    /// Pairs newly asserted this batch (the full result counts whole).
    pub fn inserted(&self) -> usize {
        match self {
            JoinEmission::Full(pairs) => pairs.len(),
            JoinEmission::Delta { inserts, .. } => inserts.len(),
        }
    }

    /// Pairs retracted this batch (always 0 for a full re-emission).
    pub fn retracted(&self) -> usize {
        match self {
            JoinEmission::Full(_) => 0,
            JoinEmission::Delta { retracts, .. } => retracts.len(),
        }
    }
}

enum JoinState<V: Data> {
    /// Per-side incremental indexes; the delta probes the opposite side.
    /// Boxed: the index carries its partitioner + per-partition trees and
    /// dwarfs the recompute variant's two Vec headers.
    Incremental { left: Box<IncrementalIndex<V>>, right: Box<IncrementalIndex<V>> },
    /// Flat per-side buffers; every batch rebuilds the right index from
    /// scratch and re-probes every left record.
    Recompute { left: Vec<(STObject, V)>, right: Vec<(STObject, V)> },
}

/// A standing spatio-temporal stream-stream join with pluggable
/// execution: recompute-from-scratch or delta-incremental. Both paths
/// apply retractions membership-checked (retracting a record a side
/// never held is a no-op), so they stay equivalent under shed or
/// quarantined upstream data.
pub struct DeltaJoin<V: Data> {
    spec: JoinSpec<V>,
    state: JoinState<V>,
}

impl<V: Data> DeltaJoin<V> {
    pub fn new(spec: JoinSpec<V>, mode: PipelineMode) -> Self {
        let state = match mode {
            PipelineMode::Incremental => JoinState::Incremental {
                left: Box::new(IncrementalIndex::new(Arc::clone(&spec.partitioner), spec.order)),
                right: Box::new(IncrementalIndex::new(Arc::clone(&spec.partitioner), spec.order)),
            },
            PipelineMode::Recompute => JoinState::Recompute { left: Vec::new(), right: Vec::new() },
        };
        DeltaJoin { spec, state }
    }

    pub fn name(&self) -> &str {
        self.spec.name()
    }

    /// `(left, right)` standing record counts.
    pub fn side_sizes(&self) -> (usize, usize) {
        match &self.state {
            JoinState::Incremental { left, right } => (left.len(), right.len()),
            JoinState::Recompute { left, right } => (left.len(), right.len()),
        }
    }

    /// Applies one batch's delta and returns what changed.
    ///
    /// The incremental path emits the *exact* difference of the standing
    /// join result by applying the delta in a fixed serialization —
    /// left retracts (probing the untouched right side), right retracts
    /// (probing the already-shrunk left side), left inserts (probing
    /// right before its own inserts land), right inserts (probing left
    /// including this batch's left inserts) — so a pair is asserted and
    /// retracted exactly once however its two halves are interleaved
    /// across sides and batches.
    pub fn on_delta(&mut self, delta: &Delta<V>) -> JoinEmission<V>
    where
        V: PartialEq,
    {
        let spec = &self.spec;
        let pred = spec.pred;
        match &mut self.state {
            JoinState::Incremental { left, right } => {
                let mut retracts = Vec::new();
                for (o, v) in delta.retracts.iter().filter(|(o, v)| (spec.left)(o, v)) {
                    if left.remove_batch([(o.clone(), v.clone())]).removed == 1 {
                        for m in right.filter(o, pred) {
                            retracts.push(((o.clone(), v.clone()), m));
                        }
                    }
                }
                for (o, v) in delta.retracts.iter().filter(|(o, v)| (spec.right)(o, v)) {
                    if right.remove_batch([(o.clone(), v.clone())]).removed == 1 {
                        for m in left.filter(o, pred) {
                            retracts.push((m, (o.clone(), v.clone())));
                        }
                    }
                }
                // retract probes fell back to linear scans on dirtied
                // partitions (still exact); rebuild before insert probes
                left.refresh();
                right.refresh();

                let mut inserts = Vec::new();
                let left_ins: Vec<(STObject, V)> =
                    delta.inserts.iter().filter(|(o, v)| (spec.left)(o, v)).cloned().collect();
                for (o, v) in &left_ins {
                    for m in right.filter(o, pred) {
                        inserts.push(((o.clone(), v.clone()), m));
                    }
                }
                left.insert_batch(left_ins);
                left.refresh();
                let right_ins: Vec<(STObject, V)> =
                    delta.inserts.iter().filter(|(o, v)| (spec.right)(o, v)).cloned().collect();
                for (o, v) in &right_ins {
                    for m in left.filter(o, pred) {
                        inserts.push((m, (o.clone(), v.clone())));
                    }
                }
                right.insert_batch(right_ins);
                right.refresh();
                JoinEmission::Delta { inserts, retracts }
            }
            JoinState::Recompute { left, right } => {
                for (o, v) in &delta.retracts {
                    if (spec.left)(o, v) {
                        if let Some(i) = left.iter().position(|(lo, lv)| lo == o && lv == v) {
                            left.remove(i);
                        }
                    }
                    if (spec.right)(o, v) {
                        if let Some(i) = right.iter().position(|(ro, rv)| ro == o && rv == v) {
                            right.remove(i);
                        }
                    }
                }
                left.extend(delta.inserts.iter().filter(|(o, v)| (spec.left)(o, v)).cloned());
                right.extend(delta.inserts.iter().filter(|(o, v)| (spec.right)(o, v)).cloned());

                // recompute from scratch: index the right side, re-probe
                // every left record — the cost the incremental path avoids
                let mut idx = IncrementalIndex::new(Arc::clone(&spec.partitioner), spec.order);
                idx.insert_batch(right.iter().cloned());
                idx.refresh();
                let mut pairs = Vec::new();
                for (o, v) in left.iter() {
                    for m in idx.filter(o, pred) {
                        pairs.push(((o.clone(), v.clone()), m));
                    }
                }
                JoinEmission::Full(pairs)
            }
        }
    }
}

/// Precomputed grid geometry, mirroring `aggregate_by_grid` exactly so
/// incrementally maintained cells are byte-identical to a recompute.
struct GridGeometry {
    dims: usize,
    sx: f64,
    sy: f64,
    cell_w: f64,
    cell_h: f64,
}

impl GridGeometry {
    fn new(dims: usize, space: &Envelope) -> Self {
        let dims = dims.max(1);
        assert!(!space.is_empty(), "aggregation space must be non-empty");
        GridGeometry {
            dims,
            sx: space.min_x(),
            sy: space.min_y(),
            cell_w: (space.width() / dims as f64).max(f64::MIN_POSITIVE),
            cell_h: (space.height() / dims as f64).max(f64::MIN_POSITIVE),
        }
    }

    fn cell_of(&self, o: &STObject) -> usize {
        let c = o.centroid();
        let col = (((c.x - self.sx) / self.cell_w).floor() as i64).clamp(0, self.dims as i64 - 1)
            as usize;
        let row = (((c.y - self.sy) / self.cell_h).floor() as i64).clamp(0, self.dims as i64 - 1)
            as usize;
        row * self.dims + col
    }

    fn stats_for(&self, i: usize, cell: &CellState) -> CellStats {
        let col = i % self.dims;
        let row = i / self.dims;
        let min_x = self.sx + col as f64 * self.cell_w;
        let min_y = self.sy + row as f64 * self.cell_h;
        let time_range = match (cell.times.keys().next(), cell.times.keys().next_back()) {
            (Some(&lo), Some(&hi)) => Some((lo, hi)),
            _ => None,
        };
        CellStats {
            col,
            row,
            bounds: Envelope::from_bounds(min_x, min_y, min_x + self.cell_w, min_y + self.cell_h),
            count: cell.count,
            time_range,
        }
    }
}

/// Running state of one grid cell. Event times are a multiset so the
/// min/max time range stays exact when a retraction removes one of
/// several records sharing a timestamp.
#[derive(Clone, Default)]
struct CellState {
    count: u64,
    times: BTreeMap<i64, u32>,
}

impl CellState {
    fn insert(&mut self, o: &STObject) {
        self.count += 1;
        if let Some(t) = o.time() {
            *self.times.entry(t.start()).or_insert(0) += 1;
        }
    }

    fn remove(&mut self, o: &STObject) {
        self.count -= 1;
        if let Some(t) = o.time() {
            let s = t.start();
            if let Some(n) = self.times.get_mut(&s) {
                *n -= 1;
                if *n == 0 {
                    self.times.remove(&s);
                }
            }
        }
    }
}

/// Running state of one open window.
struct WindowState<V> {
    /// The window's records, kept for membership-checked retraction: a
    /// retraction only adjusts aggregates if the record is actually
    /// present, exactly like removing it from a recompute pane buffer.
    members: Vec<(STObject, V)>,
    /// Per-cell aggregates; allocated on first insert when a grid is
    /// configured.
    cells: Option<Vec<CellState>>,
}

impl<V> WindowState<V> {
    fn new() -> Self {
        WindowState { members: Vec::new(), cells: None }
    }
}

/// Incrementally maintained windowed aggregation (count + per-cell
/// grid) with retraction on watermark expiry.
///
/// Routing, lateness, and the watermark behave exactly like
/// [`crate::WindowManager`] — same pre-batch watermark capture, same
/// [`LatePolicy`] handling, retractions never advance the watermark —
/// but instead of buffering records for a fire-time recompute, each
/// delta updates running aggregates in O(Δ). When the watermark expires
/// a window the final [`WindowAggregate`] is emitted without touching
/// the window's records again, together with exactly one
/// [`WindowRetraction`] evicting the window downstream.
pub struct WindowAggregator<V> {
    spec: WindowSpec,
    policy: LatePolicy,
    watermark: Watermark,
    grid: Option<GridGeometry>,
    windows: BTreeMap<i64, WindowState<V>>,
    side: Vec<(STObject, V)>,
    dropped_total: u64,
}

impl<V: Data> WindowAggregator<V> {
    pub fn new(
        spec: WindowSpec,
        allowed_lateness: i64,
        policy: LatePolicy,
        grid: Option<(usize, Envelope)>,
    ) -> Self {
        WindowAggregator {
            spec,
            policy,
            watermark: Watermark::new(allowed_lateness),
            grid: grid.map(|(dims, space)| GridGeometry::new(dims, &space)),
            windows: BTreeMap::new(),
            side: Vec::new(),
            dropped_total: 0,
        }
    }

    pub fn spec(&self) -> WindowSpec {
        self.spec
    }

    pub fn watermark(&self) -> Option<i64> {
        self.watermark.current()
    }

    /// Late records discarded over the aggregator's lifetime.
    pub fn dropped(&self) -> u64 {
        self.dropped_total
    }

    /// Windows still open.
    pub fn open_windows(&self) -> usize {
        self.windows.len()
    }

    /// Drains the side output (only fills under [`LatePolicy::SideOutput`]).
    pub fn take_side_output(&mut self) -> Vec<(STObject, V)> {
        std::mem::take(&mut self.side)
    }

    fn add(&mut self, t: i64, obj: &STObject, value: &V) {
        for start in self.spec.windows_for(t) {
            let state = self.windows.entry(start).or_insert_with(WindowState::new);
            state.members.push((obj.clone(), value.clone()));
            if let Some(geo) = &self.grid {
                let cells = state
                    .cells
                    .get_or_insert_with(|| vec![CellState::default(); geo.dims * geo.dims]);
                cells[geo.cell_of(obj)].insert(obj);
            }
        }
    }

    fn retract(&mut self, t: i64, obj: &STObject, value: &V)
    where
        V: PartialEq,
    {
        for start in self.spec.windows_for(t) {
            let Some(state) = self.windows.get_mut(&start) else { continue };
            let Some(i) = state.members.iter().position(|(o, v)| o == obj && v == value) else {
                continue;
            };
            state.members.remove(i);
            if let Some(geo) = &self.grid {
                if let Some(cells) = &mut state.cells {
                    cells[geo.cell_of(obj)].remove(obj);
                }
            }
        }
    }

    /// Applies one batch's delta to the running aggregates. Identical
    /// routing semantics to [`crate::WindowManager::observe_delta`]:
    /// lateness is judged against the watermark *as of the previous
    /// batch*, retracts apply before inserts, timely retractions are
    /// membership-checked no-ops when the record was never delivered,
    /// late retractions are always discarded, and only inserts advance
    /// the watermark.
    pub fn observe_delta(&mut self, delta: &Delta<V>) -> ObserveStats
    where
        V: PartialEq,
    {
        let mut stats = ObserveStats::default();
        let pre = self.watermark();
        for (obj, value) in &delta.retracts {
            let t = match event_time(obj) {
                Some(t) => t,
                None => {
                    stats.untimed += 1;
                    continue;
                }
            };
            if pre.is_some_and(|w| t < w) {
                stats.late_retracts += 1;
                continue;
            }
            stats.retracted += 1;
            self.retract(t, obj, value);
        }
        for (obj, value) in &delta.inserts {
            let t = match event_time(obj) {
                Some(t) => t,
                None => {
                    stats.untimed += 1;
                    continue;
                }
            };
            if pre.is_some_and(|w| t < w) {
                match self.policy {
                    LatePolicy::Drop => {
                        self.dropped_total += 1;
                        stats.dropped += 1;
                    }
                    LatePolicy::SideOutput => {
                        self.side.push((obj.clone(), value.clone()));
                        stats.side_output += 1;
                    }
                }
                continue;
            }
            self.watermark.observe(t);
            stats.accepted += 1;
            self.add(t, obj, value);
        }
        stats
    }

    /// Builds the final aggregate for one window without re-scanning its
    /// records — the running state *is* the aggregate.
    fn finalize(&self, start: i64, state: &WindowState<V>) -> WindowAggregate {
        let grid = match (&self.grid, &state.cells) {
            (Some(geo), Some(cells)) => cells
                .iter()
                .enumerate()
                .filter(|(_, c)| c.count > 0)
                .map(|(i, c)| geo.stats_for(i, c))
                .collect(),
            _ => Vec::new(),
        };
        WindowAggregate {
            start,
            end: start + self.spec.size(),
            count: state.members.len() as u64,
            grid,
            hotspot_clusters: 0,
        }
    }

    /// Finalizes and evicts every window the watermark has expired,
    /// ascending by start. Each expired window yields its final
    /// aggregate plus exactly one [`WindowRetraction`]; once expired, a
    /// window can never re-open (anything addressed to it is necessarily
    /// late from now on).
    pub fn expire(&mut self) -> Vec<(WindowAggregate, WindowRetraction)> {
        let Some(watermark) = self.watermark() else { return Vec::new() };
        let ready: Vec<i64> = self
            .windows
            .keys()
            .copied()
            .take_while(|start| start + self.spec.size() <= watermark)
            .collect();
        ready
            .into_iter()
            .map(|start| {
                let state = self.windows.remove(&start).expect("expired window present");
                let agg = self.finalize(start, &state);
                let retraction = WindowRetraction {
                    start,
                    end: start + self.spec.size(),
                    count: state.members.len() as u64,
                };
                (agg, retraction)
            })
            .collect()
    }

    /// End-of-stream: emits every remaining window's aggregate
    /// regardless of the watermark. No retractions — the stream is over,
    /// nothing downstream outlives it.
    pub fn flush(&mut self) -> Vec<WindowAggregate> {
        let windows = std::mem::take(&mut self.windows);
        windows.iter().map(|(start, state)| self.finalize(*start, state)).collect()
    }
}
