//! Event-time windowing with watermarks.
//!
//! Windows are aligned to event time (the `Temporal` component of each
//! [`STObject`]), not arrival time, so out-of-order arrivals land in the
//! right pane. A watermark trails the maximum event time seen by
//! `allowed_lateness`; a pane fires once the watermark passes its end,
//! and records arriving behind the watermark are late — dropped or
//! diverted to a side output according to [`LatePolicy`].

use crate::delta::Delta;
use stark::STObject;
use stark_engine::Data;
use std::collections::BTreeMap;

/// Extracts a record's event time (start of its temporal component).
pub fn event_time(o: &STObject) -> Option<i64> {
    o.time().map(|t| t.start())
}

/// A monotone event-time watermark: the maximum observed event time
/// minus the allowed lateness. Monotone *by construction* — the only
/// mutation is [`Watermark::observe`], which takes a max — so every
/// consumer (the pane-recompute [`WindowManager`] and the incremental
/// [`crate::WindowAggregator`]) inherits the cannot-regress guarantee,
/// no matter how batches are retried, skipped, or shed around it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Watermark {
    allowed_lateness: i64,
    max_event_time: Option<i64>,
}

impl Watermark {
    pub fn new(allowed_lateness: i64) -> Self {
        assert!(allowed_lateness >= 0, "allowed lateness must be non-negative");
        Watermark { allowed_lateness, max_event_time: None }
    }

    /// Raises the maximum observed event time (never lowers it).
    pub fn observe(&mut self, t: i64) {
        self.max_event_time = Some(self.max_event_time.map_or(t, |m| m.max(t)));
    }

    /// Current watermark; `None` until the first timed record arrives.
    pub fn current(&self) -> Option<i64> {
        self.max_event_time.map(|t| t - self.allowed_lateness)
    }

    pub fn allowed_lateness(&self) -> i64 {
        self.allowed_lateness
    }

    /// Whether an event at `t` is behind the watermark (late).
    pub fn is_late(&self, t: i64) -> bool {
        self.current().is_some_and(|w| t < w)
    }
}

/// Tumbling or sliding event-time window geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSpec {
    size: i64,
    slide: i64,
}

impl WindowSpec {
    /// Non-overlapping windows of `size` event-time units.
    pub fn tumbling(size: i64) -> Self {
        assert!(size > 0, "window size must be positive");
        WindowSpec { size, slide: size }
    }

    /// Overlapping windows of `size` units, advancing by `slide`.
    pub fn sliding(size: i64, slide: i64) -> Self {
        assert!(size > 0 && slide > 0, "window size/slide must be positive");
        assert!(slide <= size, "slide larger than size leaves gaps");
        WindowSpec { size, slide }
    }

    pub fn size(&self) -> i64 {
        self.size
    }

    pub fn slide(&self) -> i64 {
        self.slide
    }

    /// Start times of every window containing event time `t`, ascending.
    pub fn windows_for(&self, t: i64) -> Vec<i64> {
        let mut starts = Vec::new();
        let mut s = t.div_euclid(self.slide) * self.slide; // greatest start <= t
        while s + self.size > t {
            starts.push(s);
            s -= self.slide;
        }
        starts.reverse();
        starts
    }
}

/// What happens to records arriving behind the watermark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LatePolicy {
    /// Count and discard.
    #[default]
    Drop,
    /// Divert to a side output the caller can drain.
    SideOutput,
}

/// One fired window pane.
#[derive(Debug, Clone)]
pub struct WindowPane<V> {
    pub start: i64,
    pub end: i64,
    pub records: Vec<(STObject, V)>,
}

/// Per-batch accounting from [`WindowManager::observe`] /
/// [`WindowManager::observe_delta`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ObserveStats {
    /// Records assigned to at least one open pane.
    pub accepted: u64,
    /// Late records discarded under [`LatePolicy::Drop`].
    pub dropped: u64,
    /// Late records diverted under [`LatePolicy::SideOutput`].
    pub side_output: u64,
    /// Records without a temporal component (never windowed).
    pub untimed: u64,
    /// Retractions applied to open panes (timely, membership-checked).
    pub retracted: u64,
    /// Retractions arriving behind the watermark. Always discarded —
    /// the pane they would correct has already fired — regardless of
    /// [`LatePolicy`], so both execution paths agree byte-for-byte.
    pub late_retracts: u64,
}

/// Accumulates events into panes and fires them as the watermark passes.
pub struct WindowManager<V> {
    spec: WindowSpec,
    policy: LatePolicy,
    watermark: Watermark,
    /// Open panes keyed by window start.
    panes: BTreeMap<i64, Vec<(STObject, V)>>,
    side: Vec<(STObject, V)>,
    dropped_total: u64,
}

impl<V: Data> WindowManager<V> {
    pub fn new(spec: WindowSpec, allowed_lateness: i64, policy: LatePolicy) -> Self {
        WindowManager {
            spec,
            policy,
            watermark: Watermark::new(allowed_lateness),
            panes: BTreeMap::new(),
            side: Vec::new(),
            dropped_total: 0,
        }
    }

    pub fn spec(&self) -> WindowSpec {
        self.spec
    }

    pub fn allowed_lateness(&self) -> i64 {
        self.watermark.allowed_lateness()
    }

    pub fn policy(&self) -> LatePolicy {
        self.policy
    }

    /// Current watermark: max event time minus allowed lateness.
    /// `None` until the first timed record arrives.
    pub fn watermark(&self) -> Option<i64> {
        self.watermark.current()
    }

    /// Late records discarded over the manager's lifetime.
    pub fn dropped(&self) -> u64 {
        self.dropped_total
    }

    /// Drains the side output (only fills under [`LatePolicy::SideOutput`]).
    pub fn take_side_output(&mut self) -> Vec<(STObject, V)> {
        std::mem::take(&mut self.side)
    }

    fn route_insert(
        &mut self,
        obj: STObject,
        value: V,
        pre: Option<i64>,
        stats: &mut ObserveStats,
    ) {
        let t = match event_time(&obj) {
            Some(t) => t,
            None => {
                stats.untimed += 1;
                return;
            }
        };
        if let Some(w) = pre {
            if t < w {
                match self.policy {
                    LatePolicy::Drop => {
                        self.dropped_total += 1;
                        stats.dropped += 1;
                    }
                    LatePolicy::SideOutput => {
                        self.side.push((obj, value));
                        stats.side_output += 1;
                    }
                }
                return;
            }
        }
        self.watermark.observe(t);
        stats.accepted += 1;
        for start in self.spec.windows_for(t) {
            self.panes.entry(start).or_default().push((obj.clone(), value.clone()));
        }
    }

    /// Routes a batch of records into panes. Records behind the
    /// watermark *as of the previous batch* are late; the watermark then
    /// advances to cover this batch. Untimed records are not windowed.
    pub fn observe(&mut self, records: impl IntoIterator<Item = (STObject, V)>) -> ObserveStats {
        let mut stats = ObserveStats::default();
        let pre = self.watermark();
        for (obj, value) in records {
            self.route_insert(obj, value, pre, &mut stats);
        }
        stats
    }

    /// Routes a full delta: retracts first, then inserts exactly as
    /// [`WindowManager::observe`] — a delta corrects *earlier* batches,
    /// so it can never retract its own inserts. A timely retraction
    /// removes one matching `(object, value)` occurrence from every pane
    /// its event time maps to; retracting a record no pane holds (it was
    /// shed, filtered, or already retracted) is a counted no-op.
    /// Retractions never advance the watermark — only genuinely new
    /// events testify to stream progress — and late retractions are
    /// always discarded.
    pub fn observe_delta(&mut self, delta: &Delta<V>) -> ObserveStats
    where
        V: PartialEq,
    {
        let mut stats = ObserveStats::default();
        let pre = self.watermark();
        for (obj, value) in &delta.retracts {
            let t = match event_time(obj) {
                Some(t) => t,
                None => {
                    stats.untimed += 1;
                    continue;
                }
            };
            if pre.is_some_and(|w| t < w) {
                stats.late_retracts += 1;
                continue;
            }
            stats.retracted += 1;
            for start in self.spec.windows_for(t) {
                if let Some(pane) = self.panes.get_mut(&start) {
                    if let Some(i) = pane.iter().position(|(o, v)| o == obj && v == value) {
                        pane.remove(i);
                    }
                }
            }
        }
        for (obj, value) in &delta.inserts {
            self.route_insert(obj.clone(), value.clone(), pre, &mut stats);
        }
        stats
    }

    /// Removes and returns every pane whose end the watermark has passed,
    /// ascending by start.
    pub fn fire_ready(&mut self) -> Vec<WindowPane<V>> {
        let Some(watermark) = self.watermark() else { return Vec::new() };
        let ready: Vec<i64> = self
            .panes
            .keys()
            .copied()
            .take_while(|start| start + self.spec.size <= watermark)
            .collect();
        ready
            .into_iter()
            .map(|start| WindowPane {
                start,
                end: start + self.spec.size,
                records: self.panes.remove(&start).unwrap_or_default(),
            })
            .collect()
    }

    /// End-of-stream: fires every remaining pane regardless of watermark.
    pub fn flush(&mut self) -> Vec<WindowPane<V>> {
        let panes = std::mem::take(&mut self.panes);
        panes
            .into_iter()
            .map(|(start, records)| WindowPane { start, end: start + self.spec.size, records })
            .collect()
    }

    /// Number of panes still open.
    pub fn open_panes(&self) -> usize {
        self.panes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t: i64) -> (STObject, i64) {
        (STObject::point_at(t as f64, 0.0, t), t)
    }

    #[test]
    fn tumbling_assignment_is_unique() {
        let spec = WindowSpec::tumbling(10);
        assert_eq!(spec.windows_for(0), vec![0]);
        assert_eq!(spec.windows_for(9), vec![0]);
        assert_eq!(spec.windows_for(10), vec![10]);
        assert_eq!(spec.windows_for(-1), vec![-10]);
    }

    #[test]
    fn sliding_assignment_overlaps() {
        let spec = WindowSpec::sliding(10, 5);
        assert_eq!(spec.windows_for(7), vec![0, 5]);
        assert_eq!(spec.windows_for(12), vec![5, 10]);
        assert_eq!(spec.windows_for(4), vec![-5, 0]);
    }

    #[test]
    fn panes_fire_when_watermark_passes() {
        let mut wm = WindowManager::new(WindowSpec::tumbling(10), 0, LatePolicy::Drop);
        wm.observe(vec![rec(1), rec(5), rec(12)]);
        // watermark = 12: window [0,10) is complete
        let fired = wm.fire_ready();
        assert_eq!(fired.len(), 1);
        assert_eq!((fired[0].start, fired[0].end), (0, 10));
        assert_eq!(fired[0].records.len(), 2);
        // [10,20) still open until the watermark passes 20
        assert_eq!(wm.open_panes(), 1);
        wm.observe(vec![rec(21)]);
        assert_eq!(wm.fire_ready().len(), 1);
    }

    #[test]
    fn late_records_drop_or_divert() {
        let mut wm = WindowManager::new(WindowSpec::tumbling(10), 2, LatePolicy::Drop);
        wm.observe(vec![rec(20)]); // watermark becomes 18
        let stats = wm.observe(vec![rec(17), rec(19)]);
        assert_eq!(stats.dropped, 1); // 17 < 18
        assert_eq!(stats.accepted, 1);
        assert_eq!(wm.dropped(), 1);

        let mut wm = WindowManager::new(WindowSpec::tumbling(10), 2, LatePolicy::SideOutput);
        wm.observe(vec![rec(20)]);
        let stats = wm.observe(vec![rec(3)]);
        assert_eq!(stats.side_output, 1);
        assert_eq!(wm.take_side_output().len(), 1);
        assert!(wm.take_side_output().is_empty());
    }

    #[test]
    fn in_order_lateness_is_tolerated() {
        // jitter within allowed lateness never drops
        let mut wm = WindowManager::new(WindowSpec::tumbling(10), 5, LatePolicy::Drop);
        wm.observe(vec![rec(10)]); // watermark 5
        let stats = wm.observe(vec![rec(6), rec(8)]);
        assert_eq!(stats.accepted, 2);
        assert_eq!(wm.dropped(), 0);
    }

    #[test]
    fn flush_fires_all_open_panes() {
        let mut wm = WindowManager::new(WindowSpec::sliding(10, 5), 0, LatePolicy::Drop);
        wm.observe(vec![rec(2), rec(7)]);
        let flushed = wm.flush();
        // record 2 → windows [-5,5),[0,10); record 7 → [0,10),[5,15)
        assert_eq!(flushed.len(), 3);
        assert_eq!(wm.open_panes(), 0);
        let total: usize = flushed.iter().map(|p| p.records.len()).sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn untimed_records_are_counted_not_windowed() {
        let mut wm: WindowManager<i64> =
            WindowManager::new(WindowSpec::tumbling(10), 0, LatePolicy::Drop);
        let stats = wm.observe(vec![(STObject::point(1.0, 1.0), 0i64)]);
        assert_eq!(stats.untimed, 1);
        assert_eq!(wm.open_panes(), 0);
    }
}
