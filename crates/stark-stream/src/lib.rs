//! # stark-stream — micro-batch spatio-temporal event stream processing
//!
//! The streaming half of the STARK reproduction, mirroring how the
//! original runs on Spark Streaming: the paper's event pipeline tags
//! documents as they arrive, so queries must run *continuously* over an
//! unbounded event stream, not once over a static dataset.
//!
//! The model is Spark Streaming's discretised stream on top of the
//! reproduction's engine:
//!
//! * a [`Source`] ([`GeneratorSource`], [`ReplaySource`]) is pumped on a
//!   producer thread through a bounded backpressure channel
//!   ([`stark_engine::channel`]) into [`MicroBatch`]es, each of which
//!   becomes an engine `Rdd`;
//! * event-time **windows** ([`WindowSpec::tumbling`] /
//!   [`WindowSpec::sliding`]) with watermarks and a late-event policy
//!   ([`LatePolicy`]); fired panes get counts, per-cell grid aggregation
//!   and DBSCAN hotspot detection via the batch operators;
//! * **continuous queries** ([`StandingQuery`]: range/intersects
//!   filters, withinDistance, kNN monitors) re-evaluated per batch over
//!   the accumulated stream through an incrementally maintained
//!   per-partition STR-tree index ([`stark::IncrementalIndex`]) that
//!   only rebuilds the partitions each batch touches;
//! * per-batch [`BatchMetrics`] (latency, events/sec, late drops, queue
//!   depth, index rebuilds) rolled up into a [`StreamReport`];
//! * batch-level **fault tolerance**: pane aggregations retry as fresh
//!   engine jobs up to [`StreamConfig::max_batch_retries`] so a poisoned
//!   batch no longer stalls the pump, a panicking source ends the stream
//!   cleanly ([`StreamReport::source_disconnected`]), and
//!   [`BatchFailurePolicy`] picks skip-vs-abort on permanent failure;
//! * **graceful degradation** under overload: a [`ShedPolicy`]
//!   (`Block` backpressure by default, `DropOldest`, or
//!   `Sample{keep_1_in_n}`) sheds load when the batch channel saturates
//!   — fully accounted in [`StreamReport::records_shed`] and never
//!   moving the watermark backward — plus optional per-batch deadlines
//!   ([`StreamConfig::batch_deadline`]) riding the engine's
//!   cancellation tokens.
//!
//! ```
//! use stark_engine::Context;
//! use stark_geo::Envelope;
//! use stark_stream::{
//!     GeneratorSource, LatePolicy, MemorySink, StreamContext, StreamJob, WindowSpec,
//! };
//!
//! let space = Envelope::from_bounds(0.0, 0.0, 100.0, 100.0);
//! let sc = StreamContext::new(Context::with_parallelism(2));
//! let sink = MemorySink::new();
//! let job = StreamJob::new()
//!     .with_windows(WindowSpec::tumbling(500), 100, LatePolicy::Drop)
//!     .with_sink(sink.clone());
//! let report = sc.run(GeneratorSource::new(1, space, 3, 500, 50), job);
//! assert_eq!(report.batches.len(), 3);
//! assert!(sink.state().windows.iter().map(|w| w.count).sum::<u64>() > 0);
//! ```

pub mod batch;
pub mod context;
pub mod delta;
pub mod graph;
pub mod query;
pub mod sink;
pub mod source;
pub mod window;

pub use batch::{BatchId, BatchMetrics, MicroBatch, StreamReport};
pub use context::{BatchFailurePolicy, ShedPolicy, StreamConfig, StreamContext, StreamJob};
pub use delta::{apply_ops, Delta, StatelessOp};
pub use graph::{
    DeltaJoin, JoinEmission, JoinPair, JoinSide, JoinSpec, PipelineMode, WindowAggregator,
};
pub use query::{BatchEvaluation, ContinuousQueryEngine, QueryOutput, QueryResult, StandingQuery};
pub use sink::{MemorySink, MemorySinkState, Sink, WindowAggregate, WindowRetraction};
pub use source::{
    DeltaVecSource, EventPayload, GeneratorSource, Quarantine, ReplaySource, Source, VecSource,
    WktSource, QUARANTINE_CAP,
};
pub use window::{
    event_time, LatePolicy, ObserveStats, Watermark, WindowManager, WindowPane, WindowSpec,
};
