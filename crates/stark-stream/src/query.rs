//! Continuous spatio-temporal queries over the accumulated stream.
//!
//! A [`StandingQuery`] is registered once and re-evaluated on every
//! micro-batch against everything the stream has delivered so far. The
//! indexed engine keeps that state in an
//! [`IncrementalIndex`]: each batch dirties only the partitions its
//! records land in, `refresh` rebuilds just those STR-trees, and every
//! query then probes through partition pruning + the trees. The
//! unindexed engine keeps a flat record list and linear-scans it per
//! query — the baseline the S6 experiment compares against.

use crate::delta::Delta;
use stark::{IncrementalIndex, STObject, STPredicate, SpatialPartitioner};
use stark_engine::Data;
use stark_geo::DistanceFn;
use std::sync::Arc;

/// A query evaluated on every batch.
#[derive(Debug, Clone)]
pub enum StandingQuery {
    /// All stream records matching `pred` against `query`
    /// (range/intersects/contains filters).
    Filter { name: String, query: STObject, pred: STPredicate },
    /// All stream records within `max_dist` of a reference object.
    WithinDistance { name: String, reference: STObject, max_dist: f64, dist_fn: DistanceFn },
    /// The `k` stream records nearest to a focal object.
    Knn { name: String, focus: STObject, k: usize, dist_fn: DistanceFn },
}

impl StandingQuery {
    pub fn filter(name: impl Into<String>, query: STObject, pred: STPredicate) -> Self {
        StandingQuery::Filter { name: name.into(), query, pred }
    }

    pub fn within_distance(name: impl Into<String>, reference: STObject, max_dist: f64) -> Self {
        StandingQuery::WithinDistance {
            name: name.into(),
            reference,
            max_dist,
            dist_fn: DistanceFn::Euclidean,
        }
    }

    pub fn knn(name: impl Into<String>, focus: STObject, k: usize) -> Self {
        StandingQuery::Knn { name: name.into(), focus, k, dist_fn: DistanceFn::Euclidean }
    }

    pub fn name(&self) -> &str {
        match self {
            StandingQuery::Filter { name, .. }
            | StandingQuery::WithinDistance { name, .. }
            | StandingQuery::Knn { name, .. } => name,
        }
    }
}

/// What one standing query produced for one batch.
#[derive(Debug, Clone)]
pub enum QueryOutput<V> {
    /// Filter / withinDistance matches.
    Matches(Vec<(STObject, V)>),
    /// kNN neighbours with exact distances, nearest first.
    Neighbors(Vec<(f64, (STObject, V))>),
}

impl<V> QueryOutput<V> {
    pub fn len(&self) -> usize {
        match self {
            QueryOutput::Matches(m) => m.len(),
            QueryOutput::Neighbors(n) => n.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One standing query's result for one batch.
#[derive(Debug, Clone)]
pub struct QueryResult<V> {
    pub name: String,
    pub output: QueryOutput<V>,
}

/// Index maintenance + query results for one batch.
#[derive(Debug, Clone)]
pub struct BatchEvaluation<V> {
    /// Index partitions the batch's records landed in (0 when unindexed).
    pub partitions_touched: usize,
    /// Partition trees rebuilt for this batch (0 when unindexed).
    pub partitions_rebuilt: usize,
    pub results: Vec<QueryResult<V>>,
}

enum QueryState<V: Data> {
    Indexed(IncrementalIndex<V>),
    Unindexed(Vec<(STObject, V)>),
}

/// Evaluates registered standing queries on every micro-batch.
pub struct ContinuousQueryEngine<V: Data> {
    state: QueryState<V>,
    queries: Vec<StandingQuery>,
}

impl<V: Data> ContinuousQueryEngine<V> {
    /// Engine backed by an incrementally maintained per-partition index.
    pub fn indexed(partitioner: Arc<dyn SpatialPartitioner>, order: usize) -> Self {
        ContinuousQueryEngine {
            state: QueryState::Indexed(IncrementalIndex::new(partitioner, order)),
            queries: Vec::new(),
        }
    }

    /// Baseline engine that linear-scans all records per query.
    pub fn unindexed() -> Self {
        ContinuousQueryEngine { state: QueryState::Unindexed(Vec::new()), queries: Vec::new() }
    }

    pub fn is_indexed(&self) -> bool {
        matches!(self.state, QueryState::Indexed(_))
    }

    /// Registers a standing query (builder style).
    pub fn with_query(mut self, query: StandingQuery) -> Self {
        self.queries.push(query);
        self
    }

    pub fn queries(&self) -> &[StandingQuery] {
        &self.queries
    }

    /// Records accumulated so far.
    pub fn len(&self) -> usize {
        match &self.state {
            QueryState::Indexed(idx) => idx.len(),
            QueryState::Unindexed(all) => all.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Absorbs a batch, maintains the index, evaluates every query.
    pub fn on_batch(&mut self, batch: &[(STObject, V)]) -> BatchEvaluation<V> {
        let (touched, rebuilt) = match &mut self.state {
            QueryState::Indexed(idx) => {
                let touched = idx.insert_batch(batch.iter().cloned());
                let rebuilt = idx.refresh();
                (touched, rebuilt)
            }
            QueryState::Unindexed(all) => {
                all.extend(batch.iter().cloned());
                (0, 0)
            }
        };
        self.evaluation(touched, rebuilt)
    }

    /// Absorbs a full delta: retractions take their record back out of
    /// the accumulated stream (a membership-checked no-op if it never
    /// arrived — shed or quarantined upstream), then inserts land as in
    /// [`Self::on_batch`]. Every query re-evaluates against the
    /// corrected stream, so a standing result reflects retractions the
    /// batch they arrive.
    pub fn on_delta(&mut self, delta: &Delta<V>) -> BatchEvaluation<V>
    where
        V: PartialEq,
    {
        let (touched, rebuilt) = match &mut self.state {
            QueryState::Indexed(idx) => {
                let removed = idx.remove_batch(delta.retracts.iter().cloned());
                let touched = idx.insert_batch(delta.inserts.iter().cloned());
                let rebuilt = idx.refresh();
                (touched.max(removed.partitions_touched), rebuilt)
            }
            QueryState::Unindexed(all) => {
                for (obj, value) in &delta.retracts {
                    if let Some(i) = all.iter().position(|(o, v)| o == obj && v == value) {
                        all.remove(i);
                    }
                }
                all.extend(delta.inserts.iter().cloned());
                (0, 0)
            }
        };
        self.evaluation(touched, rebuilt)
    }

    fn evaluation(&self, touched: usize, rebuilt: usize) -> BatchEvaluation<V> {
        let results = self
            .queries
            .iter()
            .map(|q| QueryResult { name: q.name().to_string(), output: self.evaluate(q) })
            .collect();
        BatchEvaluation { partitions_touched: touched, partitions_rebuilt: rebuilt, results }
    }

    fn evaluate(&self, q: &StandingQuery) -> QueryOutput<V> {
        match (&self.state, q) {
            (QueryState::Indexed(idx), StandingQuery::Filter { query, pred, .. }) => {
                QueryOutput::Matches(idx.filter(query, *pred))
            }
            (
                QueryState::Indexed(idx),
                StandingQuery::WithinDistance { reference, max_dist, dist_fn, .. },
            ) => QueryOutput::Matches(idx.within_distance(reference, *max_dist, *dist_fn)),
            (QueryState::Indexed(idx), StandingQuery::Knn { focus, k, dist_fn, .. }) => {
                QueryOutput::Neighbors(idx.knn(focus, *k, *dist_fn))
            }
            (QueryState::Unindexed(all), StandingQuery::Filter { query, pred, .. }) => {
                QueryOutput::Matches(
                    all.iter().filter(|(o, _)| pred.eval(o, query)).cloned().collect(),
                )
            }
            (
                QueryState::Unindexed(all),
                StandingQuery::WithinDistance { reference, max_dist, dist_fn, .. },
            ) => QueryOutput::Matches(
                all.iter()
                    .filter(|(o, _)| o.distance(reference, *dist_fn) <= *max_dist)
                    .cloned()
                    .collect(),
            ),
            (QueryState::Unindexed(all), StandingQuery::Knn { focus, k, dist_fn, .. }) => {
                let mut scored: Vec<(f64, (STObject, V))> =
                    all.iter().map(|r| (r.0.distance(focus, *dist_fn), r.clone())).collect();
                scored.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
                scored.truncate(*k);
                QueryOutput::Neighbors(scored)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stark::{DataSummary, GridPartitioner};
    use stark_geo::{Coord, Envelope};

    fn partitioner() -> Arc<dyn SpatialPartitioner> {
        let summary: DataSummary = [(0.0, 0.0), (100.0, 100.0)]
            .iter()
            .map(|&(x, y)| (Envelope::from_point(Coord::new(x, y)), Coord::new(x, y)))
            .collect();
        Arc::new(GridPartitioner::build(4, &summary))
    }

    fn engines() -> (ContinuousQueryEngine<u64>, ContinuousQueryEngine<u64>) {
        let region =
            STObject::from_wkt_interval("POLYGON((10 10, 40 10, 40 40, 10 40, 10 10))", 0, 1 << 40)
                .unwrap();
        let build = |e: ContinuousQueryEngine<u64>| {
            e.with_query(StandingQuery::filter("region", region.clone(), STPredicate::Intersects))
                .with_query(StandingQuery::within_distance(
                    "near-center",
                    STObject::point(50.0, 50.0),
                    15.0,
                ))
                .with_query(StandingQuery::knn("closest", STObject::point(25.0, 25.0), 5))
        };
        (
            build(ContinuousQueryEngine::indexed(partitioner(), 8)),
            build(ContinuousQueryEngine::unindexed()),
        )
    }

    fn batch(seed: u64, n: usize) -> Vec<(STObject, u64)> {
        (0..n)
            .map(|i| {
                let k = seed * 1000 + i as u64;
                let x = ((k * 37) % 101) as f64;
                let y = ((k * 61) % 97) as f64;
                (STObject::point_at(x, y, k as i64), k)
            })
            .collect()
    }

    fn ids(out: &QueryOutput<u64>) -> Vec<u64> {
        let mut v: Vec<u64> = match out {
            QueryOutput::Matches(m) => m.iter().map(|(_, v)| *v).collect(),
            QueryOutput::Neighbors(n) => n.iter().map(|(_, (_, v))| *v).collect(),
        };
        v.sort_unstable();
        v
    }

    #[test]
    fn indexed_and_unindexed_agree_across_batches() {
        let (mut indexed, mut baseline) = engines();
        for b in 0..4 {
            let records = batch(b, 120);
            let fast = indexed.on_batch(&records);
            let slow = baseline.on_batch(&records);
            assert_eq!(fast.results.len(), slow.results.len());
            for (f, s) in fast.results.iter().zip(&slow.results) {
                assert_eq!(f.name, s.name);
                assert_eq!(ids(&f.output), ids(&s.output), "query {} batch {b}", f.name);
            }
            assert!(fast.partitions_touched > 0);
            assert!(fast.partitions_rebuilt > 0);
            assert!(fast.partitions_rebuilt <= indexed_partitions());
        }
        assert_eq!(indexed.len(), baseline.len());
        assert_eq!(indexed.len(), 480);
    }

    fn indexed_partitions() -> usize {
        16
    }

    #[test]
    fn rebuilds_shrink_for_localised_batches() {
        let (mut indexed, _) = engines();
        indexed.on_batch(&batch(0, 200));
        // a batch confined to one corner rebuilds few partitions
        let corner: Vec<(STObject, u64)> =
            (0..50).map(|i| (STObject::point_at(2.0, 3.0, i), 9000 + i as u64)).collect();
        let eval = indexed.on_batch(&corner);
        assert_eq!(eval.partitions_touched, 1);
        assert_eq!(eval.partitions_rebuilt, 1);
    }

    #[test]
    fn knn_is_sorted_and_bounded() {
        let (mut indexed, _) = engines();
        let eval = indexed.on_batch(&batch(1, 50));
        let knn = eval.results.iter().find(|r| r.name == "closest").unwrap();
        match &knn.output {
            QueryOutput::Neighbors(n) => {
                assert_eq!(n.len(), 5);
                assert!(n.windows(2).all(|w| w[0].0 <= w[1].0));
            }
            other => panic!("expected neighbours, got {} matches", other.len()),
        }
    }
}
