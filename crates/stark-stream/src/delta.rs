//! Delta record sets: the unit of flow in the incremental operator
//! graph.
//!
//! A [`Delta`] carries one micro-batch's worth of change — records
//! entering the stream (`inserts`) and corrections retracting records
//! delivered earlier (`retracts`). Stateless operators
//! ([`StatelessOp`]) pass a delta through in O(batch): a filter applies
//! the same predicate to inserts and retracts (a retraction of a
//! filtered-out record is itself filtered out), and a map transforms
//! both sides with the same function so a retraction still matches the
//! transformed insert it corrects.

use stark::{STObject, STPredicate};
use std::sync::Arc;

/// One micro-batch of change: records entering the stream and
/// retractions of records delivered earlier. An insert-only delta is
/// the common case; retractions arrive when an upstream source corrects
/// itself mid-stream.
#[derive(Debug, Clone)]
pub struct Delta<V> {
    /// Records entering the stream this batch.
    pub inserts: Vec<(STObject, V)>,
    /// Records retracted this batch; each retraction names the exact
    /// `(object, value)` pair it corrects. Retracting a record that
    /// never arrived (it was shed, quarantined, or already retracted)
    /// is a no-op everywhere downstream.
    pub retracts: Vec<(STObject, V)>,
}

impl<V> Default for Delta<V> {
    fn default() -> Self {
        Delta { inserts: Vec::new(), retracts: Vec::new() }
    }
}

impl<V> Delta<V> {
    /// An insert-only delta (what a plain [`crate::Source`] produces).
    pub fn from_inserts(inserts: Vec<(STObject, V)>) -> Self {
        Delta { inserts, retracts: Vec::new() }
    }

    /// A delta with explicit inserts and retractions.
    pub fn new(inserts: Vec<(STObject, V)>, retracts: Vec<(STObject, V)>) -> Self {
        Delta { inserts, retracts }
    }

    /// Total records carried (inserts + retracts).
    pub fn len(&self) -> usize {
        self.inserts.len() + self.retracts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.retracts.is_empty()
    }
}

/// A stateless operator in the incremental graph. Applying one to a
/// delta costs O(batch) and needs no standing state, so the same
/// operator chain runs identically on the incremental and the
/// recompute path — both see the same transformed stream.
#[derive(Clone)]
pub enum StatelessOp<V> {
    /// Keeps records where `pred.eval(record, query)` holds. Applied to
    /// inserts and retracts alike, so a retraction of a filtered-out
    /// record never reaches stateful operators.
    Filter { query: STObject, pred: STPredicate },
    /// Transforms each record with a (deterministic) function; inserts
    /// and retracts map through the same function, so a retraction
    /// still matches the transformed record it corrects.
    Map(Arc<dyn Fn(STObject, V) -> (STObject, V) + Send + Sync>),
}

impl<V> std::fmt::Debug for StatelessOp<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StatelessOp::Filter { pred, .. } => write!(f, "Filter({pred:?})"),
            StatelessOp::Map(_) => write!(f, "Map(..)"),
        }
    }
}

impl<V> StatelessOp<V> {
    /// Filter shorthand.
    pub fn filter(query: STObject, pred: STPredicate) -> Self {
        StatelessOp::Filter { query, pred }
    }

    /// Map shorthand.
    pub fn map(f: impl Fn(STObject, V) -> (STObject, V) + Send + Sync + 'static) -> Self {
        StatelessOp::Map(Arc::new(f))
    }

    /// Applies the operator to one side of a delta, in place.
    fn apply_side(&self, side: &mut Vec<(STObject, V)>) {
        match self {
            StatelessOp::Filter { query, pred } => side.retain(|(o, _)| pred.eval(o, query)),
            StatelessOp::Map(f) => {
                let mapped: Vec<(STObject, V)> = side.drain(..).map(|(o, v)| f(o, v)).collect();
                *side = mapped;
            }
        }
    }

    /// Applies the operator to a delta: O(batch), no state.
    pub fn apply(&self, delta: &mut Delta<V>) {
        self.apply_side(&mut delta.inserts);
        self.apply_side(&mut delta.retracts);
    }
}

/// Applies a stateless operator chain to a delta, in order.
pub fn apply_ops<V>(ops: &[StatelessOp<V>], delta: &mut Delta<V>) {
    for op in ops {
        op.apply(delta);
    }
}
