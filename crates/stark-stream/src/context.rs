//! The stream driver: source pump, micro-batch loop, job wiring.
//!
//! Mirrors Spark Streaming's model on top of the reproduction's engine:
//! a producer thread pulls batches from the [`Source`] and pushes them
//! through a bounded [`stark_engine::channel`] (backpressure: a slow
//! consumer stalls the pump), and the driver loop turns each batch into
//! an engine [`Rdd`], feeds the window manager and the continuous-query
//! engine, and emits per-batch metrics.

use crate::batch::{BatchMetrics, MicroBatch, StreamReport};
use crate::delta::{apply_ops, Delta, StatelessOp};
use crate::graph::{DeltaJoin, JoinSpec, PipelineMode, WindowAggregator};
use crate::query::ContinuousQueryEngine;
use crate::sink::{Sink, WindowAggregate};
use crate::source::Source;
use crate::window::{LatePolicy, WindowManager, WindowPane, WindowSpec};
use stark::cluster::{dbscan, DbscanParams};
use stark::SpatialRddExt;
use stark_engine::channel::{self, RecvError};
use stark_engine::{Context, StoreData};
use stark_geo::Envelope;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Best-effort rendering of a panic payload for error reporting.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(e) = payload.downcast_ref::<stark_engine::TaskError>() {
        // a cancelled or deadline-exceeded engine job propagates its
        // typed TaskError as the panic payload
        e.to_string()
    } else {
        "non-string panic payload".to_string()
    }
}

/// How the source pump degrades when the driver cannot keep up —
/// i.e. when the bounded batch channel saturates (or consumer lag
/// crosses [`StreamConfig::shed_lag_threshold`]). Shedding happens
/// *before* a record is observed by the window manager, so it can hold
/// the watermark still but never moves it backward.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShedPolicy {
    /// Backpressure: the pump blocks until the driver drains a batch.
    /// Nothing is lost; the source is stalled (the pre-existing
    /// behaviour).
    #[default]
    Block,
    /// Displace the *oldest* queued batch to make room for the newest —
    /// freshest data wins, displaced batches are counted in
    /// [`StreamReport::batches_shed`] / `records_shed`.
    DropOldest,
    /// Thin saturated batches by keeping every n-th record (the first
    /// record of each batch always survives); sampled-out records count
    /// toward [`StreamReport::records_shed`].
    Sample {
        /// Keep 1 record in `n` while saturated (`n >= 1`; 1 sheds nothing).
        keep_1_in_n: u32,
    },
}

/// What the driver does with a batch whose pane aggregation still fails
/// after the batch-level retry budget is spent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchFailurePolicy {
    /// Record the failure in [`BatchMetrics::failed`] and keep pumping —
    /// a poisoned batch must not stall the stream.
    #[default]
    Skip,
    /// Stop the driver loop; remaining queued batches are discarded.
    Abort,
}

/// Tuning knobs for a stream run.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Max records the pump requests per batch.
    pub batch_records: usize,
    /// In-flight batches before the pump blocks (backpressure depth).
    pub channel_capacity: usize,
    /// Partitions for each per-batch [`stark_engine::Rdd`].
    pub parallelism: usize,
    /// How long the driver waits for a batch before re-polling.
    pub poll: Duration,
    /// Retries a batch's pane aggregation gets after a permanent engine
    /// failure, on top of the engine's own per-task retries. Each retry
    /// re-runs the aggregation as fresh engine jobs (fresh stage
    /// ordinals), so a transiently poisoned batch recovers instead of
    /// stalling the pump.
    pub max_batch_retries: u32,
    /// What to do when the batch retry budget is exhausted.
    pub failure_policy: BatchFailurePolicy,
    /// How the pump degrades when the driver lags (see [`ShedPolicy`]).
    pub shed_policy: ShedPolicy,
    /// Queued-batch count at which the pump starts shedding. `None`
    /// sheds only when the channel is completely full
    /// (`channel_capacity`); irrelevant under [`ShedPolicy::Block`].
    pub shed_lag_threshold: Option<usize>,
    /// Wall-clock budget for each batch's pane aggregations, installed
    /// as an ambient engine deadline around batch processing
    /// ([`stark_engine::Context::deadline_scope`]). A batch past its
    /// deadline fails with a typed `DeadlineExceeded` engine error and
    /// is handled by [`StreamConfig::failure_policy`] like any other
    /// failed batch — its window *observations* still stand, so the
    /// watermark is unaffected. `None` (the default) never expires.
    pub batch_deadline: Option<Duration>,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            batch_records: 1024,
            channel_capacity: 4,
            parallelism: 4,
            poll: Duration::from_millis(100),
            max_batch_retries: 2,
            failure_policy: BatchFailurePolicy::Skip,
            shed_policy: ShedPolicy::Block,
            shed_lag_threshold: None,
            batch_deadline: None,
        }
    }
}

/// Everything attached to a stream run: windows, window-level
/// aggregations, continuous queries and sinks. Built once, consumed by
/// [`StreamContext::run`].
pub struct StreamJob<V: StoreData> {
    mode: PipelineMode,
    ops: Vec<StatelessOp<V>>,
    windows: Option<WindowManager<V>>,
    grid: Option<(usize, Envelope)>,
    hotspots: Option<DbscanParams>,
    join: Option<JoinSpec<V>>,
    queries: Option<ContinuousQueryEngine<V>>,
    sinks: Vec<Box<dyn Sink<V>>>,
}

impl<V: StoreData> Default for StreamJob<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: StoreData> StreamJob<V> {
    pub fn new() -> Self {
        StreamJob {
            mode: PipelineMode::Recompute,
            ops: Vec::new(),
            windows: None,
            grid: None,
            hotspots: None,
            join: None,
            queries: None,
            sinks: Vec::new(),
        }
    }

    /// Selects how state-bearing operators execute (default:
    /// [`PipelineMode::Recompute`]).
    pub fn with_mode(mut self, mode: PipelineMode) -> Self {
        self.mode = mode;
        self
    }

    /// Shorthand for [`Self::with_mode`]`(PipelineMode::Incremental)`.
    pub fn incremental(self) -> Self {
        self.with_mode(PipelineMode::Incremental)
    }

    /// Appends a stateless filter/map operator; the chain applies to
    /// every batch's delta, in order, before any stateful operator —
    /// identically on both execution paths.
    pub fn with_op(mut self, op: StatelessOp<V>) -> Self {
        self.ops.push(op);
        self
    }

    /// Attaches a standing stream-stream join, executed per the job's
    /// [`PipelineMode`]: full re-probe each batch under recompute,
    /// delta-probes against per-side incremental indexes under
    /// incremental.
    pub fn with_join(mut self, spec: JoinSpec<V>) -> Self {
        self.join = Some(spec);
        self
    }

    /// Windows events by event time with the given lateness policy.
    pub fn with_windows(
        mut self,
        spec: WindowSpec,
        allowed_lateness: i64,
        policy: LatePolicy,
    ) -> Self {
        self.windows = Some(WindowManager::new(spec, allowed_lateness, policy));
        self
    }

    /// Computes per-cell counts over `space` for every fired window.
    pub fn with_grid_aggregation(mut self, dims: usize, space: Envelope) -> Self {
        self.grid = Some((dims, space));
        self
    }

    /// Runs DBSCAN hotspot detection on every fired window.
    pub fn with_hotspots(mut self, params: DbscanParams) -> Self {
        self.hotspots = Some(params);
        self
    }

    /// Attaches a continuous-query engine evaluated on every batch.
    pub fn with_queries(mut self, engine: ContinuousQueryEngine<V>) -> Self {
        self.queries = Some(engine);
        self
    }

    /// Attaches an output sink (any number may be attached).
    pub fn with_sink(mut self, sink: impl Sink<V> + 'static) -> Self {
        self.sinks.push(Box::new(sink));
        self
    }
}

/// Drives micro-batch stream jobs over an engine [`Context`].
pub struct StreamContext {
    ctx: Context,
    config: StreamConfig,
}

impl StreamContext {
    pub fn new(ctx: Context) -> Self {
        StreamContext { ctx, config: StreamConfig::default() }
    }

    pub fn with_config(ctx: Context, config: StreamConfig) -> Self {
        assert!(config.batch_records > 0, "batch_records must be positive");
        assert!(config.parallelism > 0, "parallelism must be positive");
        if let ShedPolicy::Sample { keep_1_in_n } = config.shed_policy {
            assert!(keep_1_in_n >= 1, "keep_1_in_n must be at least 1");
        }
        StreamContext { ctx, config }
    }

    /// The underlying engine context.
    pub fn engine(&self) -> &Context {
        &self.ctx
    }

    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// Runs `source` to exhaustion through `job`. Blocks until the
    /// source ends and every pane has been flushed.
    pub fn run<V, S>(&self, source: S, mut job: StreamJob<V>) -> StreamReport
    where
        V: StoreData + PartialEq,
        S: Source<V> + 'static,
    {
        assert!(
            job.mode == PipelineMode::Recompute || job.hotspots.is_none(),
            "hotspot detection (DBSCAN) is a holistic aggregate and cannot be \
             maintained incrementally; use PipelineMode::Recompute"
        );
        // Incremental mode trades the window manager's fire-time pane
        // recompute for a delta-maintained aggregator, and instantiates
        // the standing join against per-side incremental indexes.
        let mut aggregator: Option<WindowAggregator<V>> = if job.mode == PipelineMode::Incremental {
            job.windows.take().map(|wm| {
                WindowAggregator::new(wm.spec(), wm.allowed_lateness(), wm.policy(), job.grid)
            })
        } else {
            None
        };
        let mut join: Option<DeltaJoin<V>> =
            job.join.take().map(|spec| DeltaJoin::new(spec, job.mode));

        let (tx, rx) = channel::bounded::<MicroBatch<V>>(self.config.channel_capacity);
        let batch_records = self.config.batch_records;
        let shed_policy = self.config.shed_policy;
        let shed_bound =
            self.config.shed_lag_threshold.unwrap_or(self.config.channel_capacity).max(1);
        let source_panicked = Arc::new(AtomicBool::new(false));
        let pump_flag = Arc::clone(&source_panicked);
        let records_shed = Arc::new(AtomicU64::new(0));
        let batches_shed = Arc::new(AtomicU64::new(0));
        let records_quarantined = Arc::new(AtomicU64::new(0));
        let pump_records_shed = Arc::clone(&records_shed);
        let pump_batches_shed = Arc::clone(&batches_shed);
        let pump_quarantined = Arc::clone(&records_quarantined);
        let pump = std::thread::spawn(move || {
            let mut source = source;
            let mut id = 0u64;
            loop {
                // A panicking source must not take the driver down with
                // it: catch it here, flag it, and let the dropped sender
                // end the stream cleanly.
                let delta =
                    match catch_unwind(AssertUnwindSafe(|| source.next_delta(batch_records))) {
                        Ok(Some(delta)) => delta,
                        Ok(None) => break, // source drained
                        Err(_) => {
                            pump_flag.store(true, Ordering::Release);
                            break;
                        }
                    };
                let mut batch = MicroBatch {
                    id,
                    records: stark_engine::Partition::from_vec(delta.inserts),
                    retracts: stark_engine::Partition::from_vec(delta.retracts),
                };
                id += 1;
                // Saturation handling: shedding drops data *here*, before
                // the window manager ever observes it, so the watermark
                // can stall but never regress.
                match shed_policy {
                    ShedPolicy::Block => {
                        if tx.send(batch).is_err() {
                            break; // driver went away
                        }
                    }
                    ShedPolicy::DropOldest => match tx.send_or_displace(batch, shed_bound) {
                        Ok(displaced) => {
                            for old in displaced {
                                pump_batches_shed.fetch_add(1, Ordering::Relaxed);
                                pump_records_shed.fetch_add(
                                    (old.records.len() + old.retracts.len()) as u64,
                                    Ordering::Relaxed,
                                );
                            }
                        }
                        Err(_) => break,
                    },
                    ShedPolicy::Sample { keep_1_in_n } => {
                        if keep_1_in_n > 1 && tx.len() >= shed_bound {
                            let full = batch.records.len();
                            let kept: Vec<_> = batch
                                .records
                                .iter()
                                .step_by(keep_1_in_n as usize)
                                .cloned()
                                .collect();
                            pump_records_shed
                                .fetch_add((full - kept.len()) as u64, Ordering::Relaxed);
                            batch.records = stark_engine::Partition::from_vec(kept);
                        }
                        if tx.send(batch).is_err() {
                            break;
                        }
                    }
                }
            }
            // Quarantine is owned by the source; publish the final count
            // once the pump winds down (normal end, panic, or abort).
            pump_quarantined.store(source.records_quarantined(), Ordering::Release);
        });

        let run_start = Instant::now();
        let mut report = StreamReport::default();
        loop {
            let batch = match rx.recv_timeout(self.config.poll) {
                Ok(batch) => batch,
                Err(RecvError::TimedOut) => continue,
                Err(RecvError::Disconnected) => break,
            };
            let queue_depth = rx.len();
            let metrics =
                self.process_batch(batch, queue_depth, &mut job, &mut aggregator, &mut join);
            let failed = metrics.failed;
            for sink in &mut job.sinks {
                sink.on_batch(&metrics);
            }
            report.batches.push(metrics);
            if failed && self.config.failure_policy == BatchFailurePolicy::Abort {
                report.aborted = true;
                break;
            }
        }
        // Unblock a pump stalled on a full channel (Abort path) before
        // joining it, or the join below would deadlock.
        drop(rx);

        // end of stream: fire every pane still open. The watermark is
        // captured first — it reflects observed events only, so batch
        // retries and the flush itself cannot move it.
        if let Some(wm) = &mut job.windows {
            report.final_watermark = wm.watermark();
            let remaining = wm.flush();
            for pane in remaining {
                let mut retries = 0u32;
                if let Ok(agg) =
                    self.aggregate_pane_with_retry(pane, &job.grid, &job.hotspots, &mut retries)
                {
                    for sink in &mut job.sinks {
                        sink.on_window(&agg);
                    }
                }
            }
        } else if let Some(agg) = &mut aggregator {
            // Incremental flush emits the maintained aggregates directly
            // — no engine jobs, nothing to retry.
            report.final_watermark = agg.watermark();
            for window in agg.flush() {
                for sink in &mut job.sinks {
                    sink.on_window(&window);
                }
            }
        }
        let _ = pump.join(); // panic already recorded via the flag
        report.source_disconnected = source_panicked.load(Ordering::Acquire);
        report.records_shed = records_shed.load(Ordering::Relaxed);
        report.batches_shed = batches_shed.load(Ordering::Relaxed);
        report.records_quarantined = records_quarantined.load(Ordering::Acquire);
        report.elapsed = run_start.elapsed();
        report
    }

    fn process_batch<V: StoreData + PartialEq>(
        &self,
        batch: MicroBatch<V>,
        queue_depth: usize,
        job: &mut StreamJob<V>,
        aggregator: &mut Option<WindowAggregator<V>>,
        join: &mut Option<DeltaJoin<V>>,
    ) -> BatchMetrics {
        let started = Instant::now();
        let records = batch.records.len() as u64;
        // Streaming batches draw on the same context-wide memory budget
        // as engine jobs: a forced reservation held for the batch's
        // lifetime, so under pressure cached/checkpointed partitions are
        // evicted rather than the live batch being refused.
        let _memory = self
            .ctx
            .memory()
            .reserve(batch.records.shallow_bytes() + batch.retracts.shallow_bytes());
        // Per-batch latency bound: pane aggregations (engine jobs) run
        // under an ambient deadline for the rest of this batch. The
        // window bookkeeping below is driver-local and unaffected, so a
        // timed-out batch still advances the watermark correctly.
        let _deadline = self.config.batch_deadline.map(|d| self.ctx.deadline_scope(d));

        let mut late_dropped = 0u64;
        let mut windows_fired = 0u64;
        let mut records_retracted = 0u64;
        let mut retractions_emitted = 0u64;
        let mut aggregation_retries = 0u32;
        let mut failed = false;
        let mut watermark = None;

        // The batch flows through the graph as a delta; the stateless
        // operator chain transforms it identically on both paths. A
        // panicking operator skips the batch whole — nothing was
        // observed, no state changed, the watermark simply holds still.
        let mut delta = Delta::new(
            batch.records.iter().cloned().collect(),
            batch.retracts.iter().cloned().collect(),
        );
        if !job.ops.is_empty() {
            let ops = &job.ops;
            match catch_unwind(AssertUnwindSafe(move || {
                let mut d = delta;
                apply_ops(ops, &mut d);
                d
            })) {
                Ok(d) => delta = d,
                Err(_) => {
                    let watermark = job
                        .windows
                        .as_ref()
                        .and_then(|wm| wm.watermark())
                        .or_else(|| aggregator.as_ref().and_then(|a| a.watermark()));
                    let latency = started.elapsed();
                    return BatchMetrics {
                        batch: batch.id,
                        records,
                        late_dropped: 0,
                        latency,
                        events_per_sec: 0.0,
                        queue_depth,
                        partitions_touched: 0,
                        partitions_rebuilt: 0,
                        windows_fired: 0,
                        records_retracted: 0,
                        retractions_emitted: 0,
                        aggregation_retries: 0,
                        watermark,
                        failed: true,
                    };
                }
            }
        }

        if let Some(wm) = &mut job.windows {
            // Observe/side/fire run exactly once per batch — they are
            // driver-local and infallible, so the watermark is a pure
            // function of the observed events no matter how often the
            // pane aggregation below retries.
            let stats = wm.observe_delta(&delta);
            late_dropped = stats.dropped;
            records_retracted = stats.retracted;
            watermark = wm.watermark();
            let side = wm.take_side_output();
            if !side.is_empty() {
                for sink in &mut job.sinks {
                    sink.on_late(&side);
                }
            }
            let fired = wm.fire_ready();
            windows_fired = fired.len() as u64;
            for pane in fired {
                match self.aggregate_pane_with_retry(
                    pane,
                    &job.grid,
                    &job.hotspots,
                    &mut aggregation_retries,
                ) {
                    Ok(agg) => {
                        for sink in &mut job.sinks {
                            sink.on_window(&agg);
                        }
                    }
                    Err(_) => failed = true,
                }
            }
        } else if let Some(agg) = aggregator.as_mut() {
            // Incremental path: the delta updates running aggregates in
            // O(Δ); expiry emits maintained state without re-scanning,
            // plus exactly one retraction per expired window.
            let stats = agg.observe_delta(&delta);
            late_dropped = stats.dropped;
            records_retracted = stats.retracted;
            watermark = agg.watermark();
            let side = agg.take_side_output();
            if !side.is_empty() {
                for sink in &mut job.sinks {
                    sink.on_late(&side);
                }
            }
            let expired = agg.expire();
            windows_fired = expired.len() as u64;
            retractions_emitted += expired.len() as u64;
            for (window, retraction) in &expired {
                for sink in &mut job.sinks {
                    sink.on_window(window);
                    sink.on_retraction(retraction);
                }
            }
        }

        if let Some(dj) = join.as_mut() {
            // Like query evaluation below: caught but not retried, since
            // a replay would double-apply the delta to join state.
            match catch_unwind(AssertUnwindSafe(|| dj.on_delta(&delta))) {
                Ok(emission) => {
                    retractions_emitted += emission.retracted() as u64;
                    for sink in &mut job.sinks {
                        sink.on_join(batch.id, &emission);
                    }
                }
                Err(_) => failed = true,
            }
        }

        let mut partitions_touched = 0;
        let mut partitions_rebuilt = 0;
        if let Some(engine) = &mut job.queries {
            // Query evaluation mutates the incremental index, so it is
            // caught but not retried: it runs no engine jobs (chaos
            // cannot strike it) and a replay could double-apply inserts.
            match catch_unwind(AssertUnwindSafe(|| engine.on_delta(&delta))) {
                Ok(eval) => {
                    partitions_touched = eval.partitions_touched;
                    partitions_rebuilt = eval.partitions_rebuilt;
                    for sink in &mut job.sinks {
                        sink.on_query_results(batch.id, &eval.results);
                    }
                }
                Err(_) => failed = true,
            }
        }

        let latency = started.elapsed();
        let events_per_sec =
            if latency.as_secs_f64() > 0.0 { records as f64 / latency.as_secs_f64() } else { 0.0 };
        BatchMetrics {
            batch: batch.id,
            records,
            late_dropped,
            latency,
            events_per_sec,
            queue_depth,
            partitions_touched,
            partitions_rebuilt,
            windows_fired,
            records_retracted,
            retractions_emitted,
            aggregation_retries,
            watermark,
            failed,
        }
    }

    /// Runs [`Self::aggregate_pane`] with the batch-level retry budget.
    /// Each attempt gets a cloned pane and fresh engine jobs (fresh
    /// stage ordinals), so a failure scoped to one stage or poisoned by
    /// a transient fault recovers on replay. `retries` accumulates the
    /// extra attempts spent.
    fn aggregate_pane_with_retry<V: StoreData>(
        &self,
        pane: WindowPane<V>,
        grid: &Option<(usize, Envelope)>,
        hotspots: &Option<DbscanParams>,
        retries: &mut u32,
    ) -> Result<WindowAggregate, String> {
        let budget = self.config.max_batch_retries;
        let mut attempt = 0u32;
        loop {
            let attempt_pane = pane.clone();
            match catch_unwind(AssertUnwindSafe(|| {
                self.aggregate_pane(attempt_pane, grid, hotspots)
            })) {
                Ok(agg) => return Ok(agg),
                Err(payload) => {
                    if attempt >= budget {
                        return Err(panic_message(payload));
                    }
                    attempt += 1;
                    *retries += 1;
                }
            }
        }
    }

    /// Computes the configured aggregates for one fired pane. The pane
    /// becomes a per-batch engine Rdd so grid aggregation and DBSCAN run
    /// through the same partitioned operators as the batch API.
    fn aggregate_pane<V: StoreData>(
        &self,
        pane: WindowPane<V>,
        grid: &Option<(usize, Envelope)>,
        hotspots: &Option<DbscanParams>,
    ) -> WindowAggregate {
        let count = pane.records.len() as u64;
        let mut agg = WindowAggregate {
            start: pane.start,
            end: pane.end,
            count,
            grid: Vec::new(),
            hotspot_clusters: 0,
        };
        if pane.records.is_empty() || (grid.is_none() && hotspots.is_none()) {
            return agg;
        }
        let parts = self.config.parallelism.min(pane.records.len()).max(1);
        let spatial = self.ctx.parallelize(pane.records, parts).spatial();
        if let Some((dims, space)) = grid {
            agg.grid = spatial.aggregate_by_grid(*dims, space);
        }
        if let Some(params) = hotspots {
            let mut clusters: Vec<u64> = dbscan(&spatial, *params)
                .collect()
                .into_iter()
                .filter_map(|(_, _, label)| label)
                .collect();
            clusters.sort_unstable();
            clusters.dedup();
            agg.hotspot_clusters = clusters.len() as u64;
        }
        agg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::StandingQuery;
    use crate::sink::MemorySink;
    use crate::source::GeneratorSource;
    use stark::STPredicate;
    use stark::{DataSummary, GridPartitioner, STObject, SpatialPartitioner};
    use stark_geo::Coord;
    use std::sync::Arc;

    fn space() -> Envelope {
        Envelope::from_bounds(0.0, 0.0, 100.0, 100.0)
    }

    fn partitioner() -> Arc<dyn SpatialPartitioner> {
        let summary: DataSummary = [(0.0, 0.0), (100.0, 100.0)]
            .iter()
            .map(|&(x, y)| (Envelope::from_point(Coord::new(x, y)), Coord::new(x, y)))
            .collect();
        Arc::new(GridPartitioner::build(4, &summary))
    }

    #[test]
    fn end_to_end_stream_run() {
        let sc = StreamContext::with_config(
            Context::with_parallelism(2),
            StreamConfig {
                batch_records: 200,
                channel_capacity: 2,
                parallelism: 2,
                ..Default::default()
            },
        );
        let source = GeneratorSource::new(11, space(), 5, 1000, 100);
        let region =
            STObject::from_wkt_interval("POLYGON((20 20, 80 20, 80 80, 20 80, 20 20))", 0, 1 << 40)
                .unwrap();
        let sink = MemorySink::new();
        let job =
            StreamJob::new()
                .with_windows(WindowSpec::tumbling(500), 150, LatePolicy::Drop)
                .with_grid_aggregation(5, space())
                .with_queries(
                    ContinuousQueryEngine::indexed(partitioner(), 8).with_query(
                        StandingQuery::filter("region", region, STPredicate::Intersects),
                    ),
                )
                .with_sink(sink.clone());

        let report = sc.run(source, job);
        assert_eq!(report.batches.len(), 5);
        assert_eq!(report.total_records(), 1000);
        assert!(report.events_per_sec() > 0.0);

        let state = sink.state();
        assert_eq!(state.batches.len(), 5);
        // every accepted record shows up in exactly one tumbling pane
        let windowed: u64 = state.windows.iter().map(|w| w.count).sum();
        assert_eq!(windowed + report.late_dropped(), 1000);
        // grid cell counts agree with pane counts
        for w in &state.windows {
            let grid_total: u64 = w.grid.iter().map(|c| c.count).sum();
            assert_eq!(grid_total, w.count, "window [{}, {})", w.start, w.end);
        }
        // query results arrive for every batch and grow monotonically
        assert_eq!(state.query_results.len(), 5);
        let sizes: Vec<usize> =
            state.query_results.iter().map(|(_, rs)| rs[0].output.len()).collect();
        assert!(sizes.windows(2).all(|w| w[0] <= w[1]), "standing result must grow: {sizes:?}");
    }

    #[test]
    fn side_output_collects_late_records() {
        let sc = StreamContext::with_config(
            Context::with_parallelism(2),
            StreamConfig { batch_records: 100, ..Default::default() },
        );
        // jitter 300 far beyond lateness 10: some records must be late
        let source = GeneratorSource::new(3, space(), 4, 1000, 300);
        let sink = MemorySink::new();
        let job = StreamJob::new()
            .with_windows(WindowSpec::tumbling(400), 10, LatePolicy::SideOutput)
            .with_sink(sink.clone());
        let report = sc.run(source, job);
        let state = sink.state();
        assert!(!state.late.is_empty(), "expected side-output records");
        assert_eq!(report.late_dropped(), 0, "side-output must not count as dropped");
        let windowed: u64 = state.windows.iter().map(|w| w.count).sum();
        assert_eq!(windowed as usize + state.late.len(), 400);
    }
}
