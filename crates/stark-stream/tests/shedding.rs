//! Load-shedding and per-batch-deadline coverage: every shed record is
//! accounted (`records_shed == records sent − records windowed`), the
//! watermark never moves backward no matter what is shed, and a batch
//! past its deadline fails typed without stalling the stream.

use stark_engine::{Context, EngineConfig, FaultInjector, FaultPolicy, FaultScope};
use stark_geo::Envelope;
use stark_stream::{
    BatchMetrics, EventPayload, GeneratorSource, LatePolicy, MemorySink, ShedPolicy, Sink,
    StreamConfig, StreamContext, StreamJob, StreamReport, WindowSpec,
};
use std::sync::Arc;
use std::time::Duration;

fn space() -> Envelope {
    Envelope::from_bounds(0.0, 0.0, 100.0, 100.0)
}

/// Stalls the driver loop after every batch, so the pump outruns the
/// consumer and the bounded channel saturates.
struct SlowSink {
    delay: Duration,
}

impl Sink<EventPayload> for SlowSink {
    fn on_batch(&mut self, _metrics: &BatchMetrics) {
        std::thread::sleep(self.delay);
    }
}

const BATCHES: usize = 16;
const BATCH_RECORDS: usize = 100;
const SENT: u64 = (BATCHES * BATCH_RECORDS) as u64;

/// Runs a slow consumer against a fast source under `policy` and
/// returns the report plus the total records landing in window panes.
/// Jitter 0 and generous lateness: nothing is ever late, so windowed
/// records account for every record the driver actually observed.
fn run_saturated(
    seed: u64,
    policy: ShedPolicy,
    lag_threshold: Option<usize>,
) -> (StreamReport, u64) {
    let sc = StreamContext::with_config(
        Context::with_parallelism(2),
        StreamConfig {
            batch_records: BATCH_RECORDS,
            channel_capacity: 2,
            parallelism: 2,
            shed_policy: policy,
            shed_lag_threshold: lag_threshold,
            ..Default::default()
        },
    );
    let source = GeneratorSource::new(seed, space(), BATCHES, 100, 0);
    let sink = MemorySink::new();
    let job = StreamJob::new()
        .with_windows(WindowSpec::tumbling(250), 10_000, LatePolicy::Drop)
        .with_sink(sink.clone())
        .with_sink(SlowSink { delay: Duration::from_millis(15) });
    let report = sc.run(source, job);
    let windowed = sink.state().windows.iter().map(|w| w.count).sum();
    (report, windowed)
}

/// Watermarks reported per batch must be non-decreasing.
fn assert_watermark_monotone(report: &StreamReport) {
    let marks: Vec<i64> = report.batches.iter().filter_map(|b| b.watermark).collect();
    assert!(
        marks.windows(2).all(|w| w[0] <= w[1]),
        "watermark moved backward across batches: {marks:?}"
    );
    if let (Some(last), Some(fin)) = (marks.last(), report.final_watermark) {
        assert!(fin >= *last, "final watermark regressed below the last batch");
    }
}

/// Shedding an insert-only stream must never surface as retraction
/// traffic: shed records are dropped before the operators, not
/// retracted after them.
fn assert_no_retraction_accounting(report: &StreamReport) {
    assert_eq!(report.records_retracted(), 0, "insert-only stream: nothing to retract");
    assert_eq!(report.retractions_emitted(), 0, "recompute path must never emit corrections");
}

#[test]
fn block_policy_sheds_nothing() {
    let (report, windowed) = run_saturated(1, ShedPolicy::Block, None);
    assert_eq!(report.records_shed, 0);
    assert_eq!(report.batches_shed, 0);
    assert_eq!(report.total_records(), SENT, "backpressure must preserve every record");
    assert_eq!(report.late_dropped(), 0);
    assert_eq!(windowed, SENT);
    assert_watermark_monotone(&report);
    assert_no_retraction_accounting(&report);
}

#[test]
fn drop_oldest_sheds_are_fully_accounted() {
    // property over several seeds: however many batches the race sheds,
    // the ledger must balance exactly
    for seed in [7u64, 21, 42] {
        let (report, windowed) = run_saturated(seed, ShedPolicy::DropOldest, None);
        assert!(report.batches_shed > 0, "seed {seed}: a 15ms/batch consumer must shed");
        assert_eq!(
            report.records_shed,
            report.batches_shed * BATCH_RECORDS as u64,
            "seed {seed}: whole batches are displaced"
        );
        assert_eq!(
            report.total_records(),
            SENT - report.records_shed,
            "seed {seed}: processed = sent - shed"
        );
        assert_eq!(
            windowed,
            SENT - report.records_shed,
            "seed {seed}: records_shed must equal records sent minus records windowed"
        );
        assert_watermark_monotone(&report);
        assert_no_retraction_accounting(&report);
    }
}

#[test]
fn sampling_thins_saturated_batches_and_accounts_every_record() {
    let (report, windowed) = run_saturated(5, ShedPolicy::Sample { keep_1_in_n: 4 }, Some(1));
    assert!(report.records_shed > 0, "saturated batches must be thinned");
    assert_eq!(report.batches_shed, 0, "sampling never drops whole batches");
    assert_eq!(report.total_records(), SENT - report.records_shed);
    assert_eq!(windowed, SENT - report.records_shed);
    assert_watermark_monotone(&report);
    assert_no_retraction_accounting(&report);
}

#[test]
fn batch_deadline_fails_typed_without_stalling_the_stream() {
    // every engine task of the first attempt stalls 150ms; the batch
    // deadline is 25ms, so pane aggregation fails typed long before the
    // stall ends — and the stream keeps pumping (Skip policy)
    let chaos = Arc::new(FaultInjector::new(
        0x5EED,
        FaultScope::Probability(1.0),
        FaultPolicy::Delay(Duration::from_millis(150)),
    ));
    let engine = Context::with_config(EngineConfig {
        parallelism: 2,
        max_task_retries: 3,
        fault_injector: Some(Arc::clone(&chaos)),
        ..Default::default()
    });
    let sc = StreamContext::with_config(
        engine,
        StreamConfig {
            batch_records: 100,
            parallelism: 2,
            max_batch_retries: 0,
            batch_deadline: Some(Duration::from_millis(25)),
            ..Default::default()
        },
    );
    let source = GeneratorSource::new(3, space(), 4, 250, 0);
    let sink = MemorySink::new();
    let job = StreamJob::new()
        .with_windows(WindowSpec::tumbling(250), 0, LatePolicy::Drop)
        .with_grid_aggregation(4, space())
        .with_sink(sink.clone());
    let report = sc.run(source, job);

    assert_eq!(report.batches.len(), 4, "timed-out batches must not stall the pump");
    assert!(report.batches_failed() >= 1, "the stalled aggregation must fail its deadline");
    assert!(!report.aborted);
    assert!(
        sc.engine().metrics().deadline_exceeded_jobs >= 1,
        "the engine must record the deadline-exceeded job"
    );
    // watermark bookkeeping is driver-local and survives the timeouts
    assert!(report.final_watermark.is_some());
    assert_watermark_monotone(&report);
    assert_no_retraction_accounting(&report);
    // the end-of-stream flush runs without the per-batch deadline, so
    // the stalled panes eventually aggregate (delays, not failures)
    assert!(sink.state().windows.iter().map(|w| w.count).sum::<u64>() > 0);
}
