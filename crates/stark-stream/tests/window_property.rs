//! Property test (satellite): for any event sequence whose out-of-order
//! jitter stays inside the allowed lateness, streaming windowed
//! aggregates — counts and grid aggregation — equal an offline batch
//! recomputation over the same events, and nothing is dropped.

use proptest::prelude::*;
use stark::{STObject, SpatialRddExt};
use stark_engine::Context;
use stark_geo::Envelope;
use stark_stream::{
    event_time, LatePolicy, MemorySink, StreamConfig, StreamContext, StreamJob, VecSource,
    WindowSpec,
};
use std::collections::BTreeMap;

const LATENESS: i64 = 50;

fn space() -> Envelope {
    Envelope::from_bounds(0.0, 0.0, 64.0, 64.0)
}

/// One generated event: position, monotone base time, bounded jitter.
/// Arrival order follows the base time; event time is `base - jitter`,
/// so records arrive out of order but never behind the watermark.
type RawEvent = (f64, f64, i64);

fn events_strategy() -> impl Strategy<Value = Vec<(f64, f64, u8)>> {
    proptest::collection::vec((0.0..64.0f64, 0.0..64.0f64, 0u8..50), 1..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn windowed_aggregates_equal_batch_recomputation(
        raw in events_strategy(),
        window in 20i64..120,
        batch_size in 1usize..40,
        sliding in any::<bool>(),
    ) {
        // monotone arrival clock, ~25 time units apart; jitter < LATENESS
        let events: Vec<RawEvent> = raw
            .iter()
            .enumerate()
            .map(|(i, (x, y, jit))| (*x, *y, i as i64 * 25 - *jit as i64))
            .collect();
        let records: Vec<(STObject, u64)> = events
            .iter()
            .enumerate()
            .map(|(i, (x, y, t))| (STObject::point_at(*x, *y, *t), i as u64))
            .collect();

        let spec = if sliding {
            WindowSpec::sliding(window, (window / 2).max(1))
        } else {
            WindowSpec::tumbling(window)
        };

        // jitter (< 50) can only reach behind the watermark if arrivals
        // advance it past the jittered time; 25/step keeps it inside.
        let batches: Vec<Vec<(STObject, u64)>> =
            records.chunks(batch_size).map(|c| c.to_vec()).collect();
        let sink = MemorySink::new();
        let sc = StreamContext::with_config(
            Context::with_parallelism(2),
            StreamConfig { batch_records: batch_size, channel_capacity: 2, parallelism: 2, ..Default::default() },
        );
        let job = StreamJob::new()
            .with_windows(spec, LATENESS, LatePolicy::Drop)
            .with_grid_aggregation(4, space())
            .with_sink(sink.clone());
        let report = sc.run(VecSource::new(batches), job);

        // in-watermark jitter never drops
        prop_assert_eq!(report.late_dropped(), 0);
        prop_assert_eq!(report.total_records() as usize, records.len());

        // offline recomputation over the very same records
        let mut expect: BTreeMap<i64, Vec<(STObject, u64)>> = BTreeMap::new();
        for (o, v) in &records {
            let t = event_time(o).unwrap();
            for start in spec.windows_for(t) {
                expect.entry(start).or_default().push((o.clone(), *v));
            }
        }

        let state = sink.state();
        let got: BTreeMap<i64, u64> = state.windows.iter().map(|w| (w.start, w.count)).collect();
        let want: BTreeMap<i64, u64> =
            expect.iter().map(|(s, m)| (*s, m.len() as u64)).collect();
        prop_assert_eq!(got, want);

        let ctx = Context::with_parallelism(2);
        for w in &state.windows {
            let members = expect.remove(&w.start).unwrap();
            let parts = members.len().clamp(1, 2);
            let oracle = ctx.parallelize(members, parts).spatial().aggregate_by_grid(4, &space());
            prop_assert_eq!(w.grid.len(), oracle.len());
            for (got, exp) in w.grid.iter().zip(&oracle) {
                prop_assert_eq!((got.col, got.row, got.count), (exp.col, exp.row, exp.count));
            }
        }
    }
}
