//! Property test (satellite): for any event sequence whose out-of-order
//! jitter stays inside the allowed lateness, streaming windowed
//! aggregates — counts and grid aggregation — equal an offline batch
//! recomputation over the same events, and nothing is dropped.

use proptest::prelude::*;
use stark::{STObject, SpatialRddExt};
use stark_engine::Context;
use stark_geo::Envelope;
use stark_stream::{
    event_time, Delta, DeltaVecSource, LatePolicy, MemorySink, StatelessOp, StreamConfig,
    StreamContext, StreamJob, VecSource, WindowSpec,
};
use std::collections::BTreeMap;
use std::collections::BTreeSet;

const LATENESS: i64 = 50;

fn space() -> Envelope {
    Envelope::from_bounds(0.0, 0.0, 64.0, 64.0)
}

/// One generated event: position, monotone base time, bounded jitter.
/// Arrival order follows the base time; event time is `base - jitter`,
/// so records arrive out of order but never behind the watermark.
type RawEvent = (f64, f64, i64);

fn events_strategy() -> impl Strategy<Value = Vec<(f64, f64, u8)>> {
    proptest::collection::vec((0.0..64.0f64, 0.0..64.0f64, 0u8..50), 1..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn windowed_aggregates_equal_batch_recomputation(
        raw in events_strategy(),
        window in 20i64..120,
        batch_size in 1usize..40,
        sliding in any::<bool>(),
    ) {
        // monotone arrival clock, ~25 time units apart; jitter < LATENESS
        let events: Vec<RawEvent> = raw
            .iter()
            .enumerate()
            .map(|(i, (x, y, jit))| (*x, *y, i as i64 * 25 - *jit as i64))
            .collect();
        let records: Vec<(STObject, u64)> = events
            .iter()
            .enumerate()
            .map(|(i, (x, y, t))| (STObject::point_at(*x, *y, *t), i as u64))
            .collect();

        let spec = if sliding {
            WindowSpec::sliding(window, (window / 2).max(1))
        } else {
            WindowSpec::tumbling(window)
        };

        // jitter (< 50) can only reach behind the watermark if arrivals
        // advance it past the jittered time; 25/step keeps it inside.
        let batches: Vec<Vec<(STObject, u64)>> =
            records.chunks(batch_size).map(|c| c.to_vec()).collect();
        let sink = MemorySink::new();
        let sc = StreamContext::with_config(
            Context::with_parallelism(2),
            StreamConfig { batch_records: batch_size, channel_capacity: 2, parallelism: 2, ..Default::default() },
        );
        let job = StreamJob::new()
            .with_windows(spec, LATENESS, LatePolicy::Drop)
            .with_grid_aggregation(4, space())
            .with_sink(sink.clone());
        let report = sc.run(VecSource::new(batches), job);

        // in-watermark jitter never drops
        prop_assert_eq!(report.late_dropped(), 0);
        prop_assert_eq!(report.total_records() as usize, records.len());

        // offline recomputation over the very same records
        let mut expect: BTreeMap<i64, Vec<(STObject, u64)>> = BTreeMap::new();
        for (o, v) in &records {
            let t = event_time(o).unwrap();
            for start in spec.windows_for(t) {
                expect.entry(start).or_default().push((o.clone(), *v));
            }
        }

        let state = sink.state();
        let got: BTreeMap<i64, u64> = state.windows.iter().map(|w| (w.start, w.count)).collect();
        let want: BTreeMap<i64, u64> =
            expect.iter().map(|(s, m)| (*s, m.len() as u64)).collect();
        prop_assert_eq!(got, want);

        let ctx = Context::with_parallelism(2);
        for w in &state.windows {
            let members = expect.remove(&w.start).unwrap();
            let parts = members.len().clamp(1, 2);
            let oracle = ctx.parallelize(members, parts).spatial().aggregate_by_grid(4, &space());
            prop_assert_eq!(w.grid.len(), oracle.len());
            for (got, exp) in w.grid.iter().zip(&oracle) {
                prop_assert_eq!((got.col, got.row, got.count), (exp.col, exp.row, exp.count));
            }
        }
    }

    /// Incremental path: watermark expiry emits exactly one retraction
    /// per expired window — no more, no less. A window counts as
    /// expired iff its end fell behind the final watermark while the
    /// stream was still running; flush-emitted windows get none.
    #[test]
    fn watermark_expiry_retracts_each_window_exactly_once(
        raw in events_strategy(),
        window in 20i64..120,
        batch_size in 1usize..40,
        sliding in any::<bool>(),
    ) {
        let deltas: Vec<Delta<u64>> = raw
            .iter()
            .enumerate()
            .map(|(i, (x, y, jit))| {
                (STObject::point_at(*x, *y, i as i64 * 25 - *jit as i64), i as u64)
            })
            .collect::<Vec<_>>()
            .chunks(batch_size)
            .map(|c| Delta::from_inserts(c.to_vec()))
            .collect();

        let spec = if sliding {
            WindowSpec::sliding(window, (window / 2).max(1))
        } else {
            WindowSpec::tumbling(window)
        };
        let sink = MemorySink::new();
        let sc = StreamContext::with_config(
            Context::with_parallelism(2),
            StreamConfig { batch_records: batch_size, channel_capacity: 2, parallelism: 2, ..Default::default() },
        );
        let job = StreamJob::new()
            .incremental()
            .with_windows(spec, LATENESS, LatePolicy::Drop)
            .with_grid_aggregation(4, space())
            .with_sink(sink.clone());
        let report = sc.run(DeltaVecSource::new(deltas), job);

        let state = sink.state();
        let wm = report.final_watermark.expect("stream carried timed records");
        let expired: BTreeSet<i64> =
            state.windows.iter().filter(|w| w.end <= wm).map(|w| w.start).collect();
        let retracted: BTreeSet<i64> = state.retractions.iter().map(|r| r.start).collect();
        prop_assert_eq!(
            state.retractions.len(),
            retracted.len(),
            "a window was retracted more than once"
        );
        prop_assert_eq!(&retracted, &expired);
        prop_assert_eq!(report.retractions_emitted(), state.retractions.len() as u64);
        for r in &state.retractions {
            let w = state
                .windows
                .iter()
                .find(|w| w.start == r.start && w.end == r.end)
                .expect("retraction without matching aggregate");
            prop_assert_eq!(w.count, r.count);
        }
    }
}

/// Incremental path: a batch skipped whole (its stateless op panics)
/// must hold the watermark still — never regress it — and the rest of
/// the stream must come out exactly as if the poisoned batch had been
/// empty.
#[test]
fn watermark_never_regresses_across_skipped_incremental_batch() {
    let mk = |t: i64, v: u64| (STObject::point_at(20.0, 20.0, t), v);
    let batch = |b: i64| {
        Delta::from_inserts((0..3).map(|i| mk(b * 100 + i * 30, (b * 10 + i) as u64)).collect())
    };
    let mut poisoned: Vec<Delta<u64>> = (0..6).map(batch).collect();
    poisoned[3].inserts.push(mk(333, 666)); // sentinel the op panics on
    let mut clean: Vec<Delta<u64>> = (0..6).map(batch).collect();
    clean[3] = Delta::from_inserts(Vec::new()); // skipped ≡ empty

    let run = |script: Vec<Delta<u64>>| {
        let sink = MemorySink::new();
        let sc = StreamContext::with_config(
            Context::with_parallelism(2),
            StreamConfig { channel_capacity: 2, parallelism: 2, ..Default::default() },
        );
        let job = StreamJob::new()
            .incremental()
            .with_op(StatelessOp::map(|o, v: u64| {
                assert_ne!(v, 666, "poisoned record reached the op chain");
                (o, v)
            }))
            .with_windows(WindowSpec::tumbling(100), 50, LatePolicy::Drop)
            .with_sink(sink.clone());
        let report = sc.run(DeltaVecSource::new(script), job);
        let state = sink.state().clone();
        (report, state)
    };

    let (poisoned_report, poisoned_state) = run(poisoned);
    let (clean_report, clean_state) = run(clean);

    assert_eq!(poisoned_report.batches_failed(), 1);
    assert!(poisoned_report.batches[3].failed, "batch 3 carries the poison");
    let marks: Vec<i64> = poisoned_report.batches.iter().filter_map(|b| b.watermark).collect();
    assert!(marks.windows(2).all(|w| w[0] <= w[1]), "watermark regressed: {marks:?}");
    assert_eq!(
        poisoned_report.batches[3].watermark, poisoned_report.batches[2].watermark,
        "a skipped batch must hold the watermark still"
    );

    assert_eq!(clean_report.batches_failed(), 0);
    assert_eq!(poisoned_report.final_watermark, clean_report.final_watermark);
    let windows = |s: &stark_stream::MemorySinkState<u64>| {
        s.windows.iter().map(|w| (w.start, w.end, w.count)).collect::<Vec<_>>()
    };
    assert_eq!(windows(&poisoned_state), windows(&clean_state));
    assert_eq!(poisoned_state.retractions, clean_state.retractions);
}
