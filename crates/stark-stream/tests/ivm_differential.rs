//! Differential pinning of the incremental view-maintenance path: for
//! any randomly generated event stream — out-of-order timestamps, late
//! arrivals beyond the allowed lateness, scripted shed batches,
//! mid-stream retractions (including retractions of records that were
//! shed and never delivered), transient engine faults — the incremental
//! pipeline must produce byte-identical per-window results, the same
//! standing join state after every batch, the same standing-query
//! results, and the same watermark as the recompute pipeline.
//!
//! Shedding is *scripted* (pre-applied to the generated delta script)
//! rather than raced through the live `ShedPolicy` machinery, so both
//! runs consume the identical byte stream and the comparison is exact;
//! the live-shedding accounting invariants are covered by a separate
//! deterministic-invariant test below. Fault injection reuses the
//! `STARK_CHAOS_SEED` convention: transient faults strike the recompute
//! path's engine jobs within the task retry budget, so they recover —
//! and the output must still match the untouched incremental run.

use proptest::prelude::*;
use stark::{DataSummary, GridPartitioner, STObject, STPredicate, SpatialPartitioner};
use stark_engine::{Context, EngineConfig, FaultInjector};
use stark_geo::{Coord, Envelope};
use stark_stream::{
    ContinuousQueryEngine, Delta, DeltaVecSource, JoinEmission, JoinSpec, LatePolicy, MemorySink,
    MemorySinkState, PipelineMode, QueryOutput, ShedPolicy, Sink, StandingQuery, StatelessOp,
    StreamConfig, StreamContext, StreamJob, StreamReport, WindowSpec,
};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

const LATENESS: i64 = 60;

fn space() -> Envelope {
    Envelope::from_bounds(0.0, 0.0, 100.0, 100.0)
}

fn partitioner() -> Arc<dyn SpatialPartitioner> {
    let summary: DataSummary = [(0.0, 0.0), (100.0, 100.0)]
        .iter()
        .map(|&(x, y)| (Envelope::from_point(Coord::new(x, y)), Coord::new(x, y)))
        .collect();
    Arc::new(GridPartitioner::build(4, &summary))
}

fn chaos_seed() -> u64 {
    std::env::var("STARK_CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(805_381)
}

/// One generated record: position, jitter (can exceed the allowed
/// lateness → genuinely late), whether to retract it two batches after
/// delivery, and a shed-control byte.
type RawEvent = (f64, f64, u8, bool, u8);

/// Turns the raw proptest tuples into a delta script: inserts chunked
/// into batches with scripted shedding applied (whole-batch drops and
/// every-2nd thinning), and retractions scheduled two batches after
/// each flagged record's delivery — *whether or not* its insert
/// survived shedding, so retract-of-never-delivered stays exercised.
fn build_script(raw: &[RawEvent], batch_size: usize) -> Vec<Delta<u64>> {
    let records: Vec<(STObject, u64)> = raw
        .iter()
        .enumerate()
        .map(|(i, (x, y, jit, _, _))| {
            let t = i as i64 * 20 - *jit as i64;
            (STObject::point_at(*x, *y, t), i as u64)
        })
        .collect();
    let chunks: Vec<&[(STObject, u64)]> = records.chunks(batch_size).collect();
    let n_batches = chunks.len();
    let mut script: Vec<Delta<u64>> = Vec::with_capacity(n_batches);
    for (b, chunk) in chunks.iter().enumerate() {
        let shed_code = raw[b * batch_size].4 % 8;
        let inserts: Vec<(STObject, u64)> = match shed_code {
            0 => Vec::new(), // whole batch shed
            1 => chunk.iter().step_by(2).cloned().collect(),
            _ => chunk.to_vec(),
        };
        script.push(Delta::from_inserts(inserts));
    }
    for (i, (_, _, _, retract, _)) in raw.iter().enumerate() {
        if !retract {
            continue;
        }
        let delivered_in = i / batch_size;
        let at = (delivered_in + 2).min(n_batches - 1);
        script[at].retracts.push(records[i].clone());
    }
    script
}

/// Comparable join pair: record values are unique per event, so the
/// value pair identifies the joined records exactly.
fn pair_key(pair: &((STObject, u64), (STObject, u64))) -> (u64, u64) {
    ((pair.0).1, (pair.1).1)
}

fn sorted_query_values(out: &QueryOutput<u64>) -> Vec<u64> {
    let mut v: Vec<u64> = match out {
        QueryOutput::Matches(m) => m.iter().map(|(_, v)| *v).collect(),
        QueryOutput::Neighbors(n) => n.iter().map(|(_, (_, v))| *v).collect(),
    };
    v.sort_unstable();
    v
}

struct RunConfig {
    sliding: bool,
    side_output: bool,
    inject_faults: bool,
    lateness: i64,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self { sliding: false, side_output: false, inject_faults: false, lateness: LATENESS }
    }
}

/// Runs one pipeline over the script and returns its report + sink.
fn run_pipeline(
    mode: PipelineMode,
    script: &[Delta<u64>],
    cfg: &RunConfig,
) -> (StreamReport, MemorySinkState<u64>) {
    let engine = if cfg.inject_faults {
        // Transient faults within the engine's own task retry budget:
        // the recompute path's pane-aggregation jobs get struck and
        // recover; the incremental path runs no engine jobs at all.
        Context::with_config(EngineConfig {
            parallelism: 2,
            max_task_retries: 3,
            fault_injector: Some(Arc::new(FaultInjector::transient(chaos_seed(), 0.3))),
            ..Default::default()
        })
    } else {
        Context::with_parallelism(2)
    };
    let sc = StreamContext::with_config(
        engine,
        StreamConfig {
            batch_records: 64,
            channel_capacity: 2,
            parallelism: 2,
            max_batch_retries: 2,
            ..Default::default()
        },
    );
    let spec = if cfg.sliding { WindowSpec::sliding(100, 50) } else { WindowSpec::tumbling(100) };
    let policy = if cfg.side_output { LatePolicy::SideOutput } else { LatePolicy::Drop };
    let region =
        STObject::from_wkt_interval("POLYGON((5 5, 95 5, 95 95, 5 95, 5 5))", -10_000, 1 << 40)
            .unwrap();
    let join = JoinSpec::new(
        "near-pairs",
        Arc::new(|_: &STObject, v: &u64| v.is_multiple_of(2)),
        Arc::new(|_: &STObject, v: &u64| !v.is_multiple_of(2)),
        STPredicate::within_distance(10.0),
        partitioner(),
        8,
    );
    let sink = MemorySink::new();
    let job = StreamJob::new()
        .with_mode(mode)
        .with_op(StatelessOp::filter(region.clone(), STPredicate::Intersects))
        .with_op(StatelessOp::map(|o, v: u64| (o, v.wrapping_add(1000))))
        .with_windows(spec, cfg.lateness, policy)
        .with_grid_aggregation(4, space())
        .with_join(join)
        .with_queries(
            ContinuousQueryEngine::indexed(partitioner(), 8)
                .with_query(StandingQuery::filter("region", region, STPredicate::Intersects))
                .with_query(StandingQuery::within_distance(
                    "near-center",
                    STObject::point(50.0, 50.0),
                    20.0,
                )),
        )
        .with_sink(sink.clone());
    let report = sc.run(DeltaVecSource::new(script.to_vec()), job);
    let state = sink.state().clone();
    (report, state)
}

/// The accumulated standing join result after each batch, derived from
/// whatever the pipeline emitted (full re-emissions replace, deltas
/// apply), as sorted multisets of value pairs.
fn standing_join_by_batch(state: &MemorySinkState<u64>) -> Vec<(u64, Vec<(u64, u64)>)> {
    let mut standing: Vec<(u64, u64)> = Vec::new();
    let mut out = Vec::new();
    for (batch, emission) in &state.joins {
        match emission {
            JoinEmission::Full(pairs) => {
                standing = pairs.iter().map(pair_key).collect();
            }
            JoinEmission::Delta { inserts, retracts } => {
                for r in retracts {
                    let key = pair_key(r);
                    let i = standing
                        .iter()
                        .position(|k| *k == key)
                        .expect("incremental join retracted a pair that was never asserted");
                    standing.swap_remove(i);
                }
                standing.extend(inserts.iter().map(pair_key));
            }
        }
        let mut snapshot = standing.clone();
        snapshot.sort_unstable();
        out.push((*batch, snapshot));
    }
    out
}

fn assert_equivalent(
    rec: &(StreamReport, MemorySinkState<u64>),
    inc: &(StreamReport, MemorySinkState<u64>),
) {
    let (rec_report, rec_state) = rec;
    let (inc_report, inc_state) = inc;

    // identical stream-level accounting
    assert_eq!(rec_report.total_records(), inc_report.total_records());
    assert_eq!(rec_report.late_dropped(), inc_report.late_dropped());
    assert_eq!(rec_report.records_retracted(), inc_report.records_retracted());
    assert_eq!(rec_report.final_watermark, inc_report.final_watermark);
    assert_eq!(rec_report.batches_failed(), 0, "transient faults must recover");
    assert_eq!(inc_report.batches_failed(), 0);

    // byte-identical per-window output, in firing order
    assert_eq!(rec_state.windows.len(), inc_state.windows.len(), "window count differs");
    for (r, i) in rec_state.windows.iter().zip(&inc_state.windows) {
        assert_eq!((r.start, r.end, r.count), (i.start, i.end, i.count));
        assert_eq!(r.grid, i.grid, "grid cells differ for window [{}, {})", r.start, r.end);
        assert_eq!(r.hotspot_clusters, i.hotspot_clusters);
    }

    // same late side-output, in arrival order
    let late = |s: &MemorySinkState<u64>| s.late.iter().map(|(_, v)| *v).collect::<Vec<_>>();
    assert_eq!(late(rec_state), late(inc_state));

    // the standing join agrees after every single batch
    assert_eq!(standing_join_by_batch(rec_state), standing_join_by_batch(inc_state));

    // standing queries agree per batch
    assert_eq!(rec_state.query_results.len(), inc_state.query_results.len());
    for ((rb, rres), (ib, ires)) in rec_state.query_results.iter().zip(&inc_state.query_results) {
        assert_eq!(rb, ib);
        assert_eq!(rres.len(), ires.len());
        for (r, i) in rres.iter().zip(ires) {
            assert_eq!(r.name, i.name);
            assert_eq!(sorted_query_values(&r.output), sorted_query_values(&i.output));
        }
    }

    // the pure-recompute path must never emit corrections: any nonzero
    // count would be silent double-emission
    assert_eq!(rec_report.retractions_emitted(), 0);
    assert!(rec_state.retractions.is_empty());
    // incremental expiry retractions: exactly one per expired window,
    // each matching an emitted window aggregate
    let expired = inc_state.retractions.len();
    let mut starts: Vec<i64> = inc_state.retractions.iter().map(|r| r.start).collect();
    starts.sort_unstable();
    starts.dedup();
    assert_eq!(starts.len(), expired, "duplicate retraction for a window");
    for r in &inc_state.retractions {
        let w = inc_state
            .windows
            .iter()
            .find(|w| w.start == r.start && w.end == r.end)
            .expect("retraction without a matching window emission");
        assert_eq!(w.count, r.count);
    }
    let join_retracts: u64 = inc_state.joins.iter().map(|(_, e)| e.retracted() as u64).sum();
    assert_eq!(inc_report.retractions_emitted(), expired as u64 + join_retracts);
}

fn events_strategy() -> impl Strategy<Value = Vec<RawEvent>> {
    proptest::collection::vec(
        (0.0..100.0f64, 0.0..100.0f64, 0u8..90, any::<bool>(), any::<u8>()),
        24..160,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn incremental_equals_recompute(
        raw in events_strategy(),
        batch_size in 4usize..24,
        sliding in any::<bool>(),
        side_output in any::<bool>(),
        inject_faults in any::<bool>(),
    ) {
        let script = build_script(&raw, batch_size);
        let cfg = RunConfig { sliding, side_output, inject_faults, ..RunConfig::default() };
        let rec = run_pipeline(PipelineMode::Recompute, &script, &cfg);
        let inc = run_pipeline(PipelineMode::Incremental, &script, &cfg);
        assert_equivalent(&rec, &inc);
    }
}

/// A hand-written worst-case script: duplicate records, a retraction of
/// a record that was never delivered, a duplicate retraction, and a
/// late retraction — every no-op edge the membership checks guard.
#[test]
fn retraction_edge_cases_agree() {
    let rec_at = |t: i64, v: u64| (STObject::point_at(50.0, 50.0, t), v);
    let script: Vec<Delta<u64>> = vec![
        // twins: two records equal in every component
        Delta::from_inserts(vec![rec_at(10, 1), rec_at(10, 1), rec_at(30, 2)]),
        // retract one twin only; retract a record never delivered
        Delta::new(vec![rec_at(250, 3)], vec![rec_at(10, 1), rec_at(15, 99)]),
        // duplicate retraction of the already-retracted twin, plus a
        // retraction that is now late (watermark has advanced past it)
        Delta::new(vec![rec_at(500, 4)], vec![rec_at(10, 1), rec_at(30, 2)]),
        Delta::from_inserts(vec![rec_at(700, 5)]),
    ];
    let cfg = RunConfig::default();
    let rec = run_pipeline(PipelineMode::Recompute, &script, &cfg);
    let inc = run_pipeline(PipelineMode::Incremental, &script, &cfg);
    assert_equivalent(&rec, &inc);
    // window [0, 100) keeps the surviving twin AND record 2: the batch-3
    // retraction of rec(30, 2) arrives behind watermark 190 and is
    // discarded as late by both paths
    let w0 = inc.1.windows.iter().find(|w| w.start == 0).expect("window [0,100) fired");
    assert_eq!(w0.count, 2, "one twin retracted; the other twin and record 2 survive");
}

/// Live shedding on the incremental path: nondeterministic races make a
/// cross-path comparison impossible, so pin the accounting invariants
/// instead — every record is shed, windowed, or late; no retraction
/// accounting appears for an insert-only stream.
#[test]
fn incremental_path_accounts_for_live_shedding() {
    struct SlowSink(Duration);
    impl Sink<(u64, String)> for SlowSink {
        fn on_batch(&mut self, _m: &stark_stream::BatchMetrics) {
            std::thread::sleep(self.0);
        }
    }
    let sc = StreamContext::with_config(
        Context::with_parallelism(2),
        StreamConfig {
            batch_records: 100,
            channel_capacity: 2,
            parallelism: 2,
            shed_policy: ShedPolicy::Sample { keep_1_in_n: 4 },
            shed_lag_threshold: Some(1),
            ..Default::default()
        },
    );
    let source = stark_stream::GeneratorSource::new(17, space(), 12, 100, 0);
    let sink = MemorySink::new();
    let job = StreamJob::new()
        .incremental()
        .with_windows(WindowSpec::tumbling(250), 10_000, LatePolicy::Drop)
        .with_grid_aggregation(4, space())
        .with_sink(sink.clone())
        .with_sink(SlowSink(Duration::from_millis(15)));
    let report = sc.run(source, job);

    let windowed: u64 = sink.state().windows.iter().map(|w| w.count).sum();
    assert_eq!(report.total_records(), 1200 - report.records_shed);
    assert_eq!(windowed, 1200 - report.records_shed, "shed + windowed must cover every record");
    assert!(report.records_shed > 0, "a 15ms/batch consumer must saturate and shed");
    assert_eq!(report.records_retracted(), 0, "insert-only stream");
    let marks: Vec<i64> = report.batches.iter().filter_map(|b| b.watermark).collect();
    assert!(marks.windows(2).all(|w| w[0] <= w[1]), "watermark regressed: {marks:?}");
    // grid totals match pane counts on the maintained aggregates too
    for w in sink.state().windows.iter() {
        let grid_total: u64 = w.grid.iter().map(|c| c.count).sum();
        assert_eq!(grid_total, w.count);
    }
}

/// Scripted-shedding equivalence across every `ShedPolicy` shape: the
/// script pre-applies DropOldest-style whole-batch drops and
/// Sample-style thinning, so the differential property above already
/// covers them; this pins one deterministic instance of each
/// explicitly, with retractions aimed at the shed records.
#[test]
fn scripted_shed_variants_agree() {
    let raw: Vec<RawEvent> = (0..96)
        .map(|i| {
            let x = (i * 37 % 100) as f64;
            let y = (i * 61 % 100) as f64;
            // shed codes cycle: batch drops, thinning, and clean batches
            (x, y, (i % 5) as u8 * 20, i % 3 == 0, (i % 8) as u8)
        })
        .collect();
    for batch_size in [6usize, 12] {
        let script = build_script(&raw, batch_size);
        let shed_any = script.iter().any(|d| d.inserts.is_empty() && !d.retracts.is_empty())
            || script.iter().any(|d| d.inserts.len() < batch_size);
        assert!(shed_any, "script must actually shed something");
        let cfg = RunConfig { sliding: true, side_output: true, ..RunConfig::default() };
        let rec = run_pipeline(PipelineMode::Recompute, &script, &cfg);
        let inc = run_pipeline(PipelineMode::Incremental, &script, &cfg);
        assert_equivalent(&rec, &inc);
        assert!(
            rec.0.records_retracted() > 0,
            "retractions of delivered records must actually apply"
        );
    }
}

/// Both execution paths agree with a BTreeMap oracle computed offline
/// from the script: the per-window surviving-record counts.
#[test]
fn both_paths_agree_with_offline_oracle() {
    let raw: Vec<RawEvent> = (0..120)
        .map(|i| (((i * 13) % 100) as f64, ((i * 29) % 100) as f64, 0, i % 4 == 0, 2))
        .collect();
    let script = build_script(&raw, 10);
    // a lateness wider than the whole stream keeps every 2-batch-delayed
    // retraction timely, so the oracle can apply retracts unconditionally
    let cfg = RunConfig { lateness: 1_000_000, ..RunConfig::default() };
    let inc = run_pipeline(PipelineMode::Incremental, &script, &cfg);
    let rec = run_pipeline(PipelineMode::Recompute, &script, &cfg);
    assert_equivalent(&rec, &inc);

    // offline oracle: jitter 0 → nothing late; replay the script's
    // inserts minus its retracts (the op-chain filter keeps everything
    // inside (5,95), map shifts values only), count per tumbling window
    let region = Envelope::from_bounds(5.0, 5.0, 95.0, 95.0);
    let mut surviving: Vec<(STObject, u64)> = Vec::new();
    for d in &script {
        for r in &d.retracts {
            if let Some(i) = surviving.iter().position(|(o, v)| o == &r.0 && *v == r.1) {
                surviving.remove(i);
            }
        }
        surviving.extend(d.inserts.iter().cloned());
    }
    let mut want: BTreeMap<i64, u64> = BTreeMap::new();
    for (o, _) in &surviving {
        let c = o.centroid();
        if region.contains_coord(&c) {
            let t = stark_stream::event_time(o).unwrap();
            *want.entry(t.div_euclid(100) * 100).or_insert(0) += 1;
        }
    }
    want.retain(|_, n| *n > 0);
    let got: BTreeMap<i64, u64> =
        inc.1.windows.iter().filter(|w| w.count > 0).map(|w| (w.start, w.count)).collect();
    assert_eq!(got, want);
}
