//! End-to-end acceptance test: source → windows → continuous query →
//! sink, with every windowed result checked *exactly* against an offline
//! batch recomputation over the same events.

use stark::{
    DataSummary, GridPartitioner, STObject, STPredicate, SpatialPartitioner, SpatialRddExt,
};
use stark_engine::Context;
use stark_geo::{Coord, Envelope};
use stark_stream::{
    event_time, ContinuousQueryEngine, GeneratorSource, LatePolicy, MemorySink, QueryOutput,
    Source, StandingQuery, StreamConfig, StreamContext, StreamJob, WindowSpec,
};
use std::collections::BTreeMap;

/// A streamed record as the built-in sources produce it.
type Record = (STObject, (u64, String));

const SEED: u64 = 2024;
const BATCHES: usize = 6;
const BATCH_RECORDS: usize = 250;
const BATCH_SPAN: i64 = 1_000;
const JITTER: i64 = 400;
const WINDOW: i64 = 700;
const LATENESS: i64 = 100;

fn space() -> Envelope {
    Envelope::from_bounds(0.0, 0.0, 100.0, 100.0)
}

fn source() -> GeneratorSource {
    GeneratorSource::new(SEED, space(), BATCHES, BATCH_SPAN, JITTER)
}

fn partitioner() -> std::sync::Arc<dyn SpatialPartitioner> {
    let summary: DataSummary = [(0.0, 0.0), (100.0, 100.0)]
        .iter()
        .map(|&(x, y)| (Envelope::from_point(Coord::new(x, y)), Coord::new(x, y)))
        .collect();
    std::sync::Arc::new(GridPartitioner::build(4, &summary))
}

fn region() -> STObject {
    STObject::from_wkt_interval("POLYGON((25 25, 75 25, 75 75, 25 75, 25 25))", 0, i64::MAX / 2)
        .unwrap()
}

#[test]
fn stream_results_match_offline_batch_recomputation() {
    // the same deterministic source, drained up front for the oracle
    let mut offline = source();
    let mut all: Vec<(STObject, (u64, String))> = Vec::new();
    while let Some(batch) = offline.next_batch(BATCH_RECORDS) {
        all.extend(batch);
    }
    assert_eq!(all.len(), BATCHES * BATCH_RECORDS);

    let sink = MemorySink::new();
    let sc = StreamContext::with_config(
        Context::with_parallelism(4),
        StreamConfig {
            batch_records: BATCH_RECORDS,
            channel_capacity: 2,
            parallelism: 4,
            ..Default::default()
        },
    );
    let job = StreamJob::new()
        .with_windows(WindowSpec::tumbling(WINDOW), LATENESS, LatePolicy::SideOutput)
        .with_grid_aggregation(8, space())
        .with_queries(
            ContinuousQueryEngine::indexed(partitioner(), 8)
                .with_query(StandingQuery::filter("region", region(), STPredicate::Intersects))
                .with_query(StandingQuery::knn("nearest", STObject::point(50.0, 50.0), 10)),
        )
        .with_sink(sink.clone());
    let report = sc.run(source(), job);
    assert_eq!(report.total_records() as usize, all.len());

    let state = sink.state();

    // ---- windows: exact offline recomputation ----------------------
    // accepted = everything the stream did not divert as late
    let late_ids: std::collections::HashSet<u64> =
        state.late.iter().map(|(_, (id, _))| *id).collect();
    assert!(!late_ids.is_empty(), "jitter >> lateness must produce late records");
    let accepted: Vec<&Record> = all.iter().filter(|(_, (id, _))| !late_ids.contains(id)).collect();

    let spec = WindowSpec::tumbling(WINDOW);
    let mut expect_counts: BTreeMap<i64, u64> = BTreeMap::new();
    let mut expect_members: BTreeMap<i64, Vec<Record>> = BTreeMap::new();
    for (o, v) in &accepted {
        let t = event_time(o).expect("generator records are timed");
        for start in spec.windows_for(t) {
            *expect_counts.entry(start).or_default() += 1;
            expect_members.entry(start).or_default().push((o.clone(), v.clone()));
        }
    }

    let got_counts: BTreeMap<i64, u64> = state.windows.iter().map(|w| (w.start, w.count)).collect();
    assert_eq!(got_counts, expect_counts, "windowed counts diverge from batch recomputation");

    // grid aggregation per window must match the batch operator exactly
    let ctx = Context::with_parallelism(4);
    for w in &state.windows {
        let members = expect_members.remove(&w.start).unwrap_or_default();
        let parts = members.len().clamp(1, 4);
        let expect_grid = ctx.parallelize(members, parts).spatial().aggregate_by_grid(8, &space());
        assert_eq!(
            w.grid.len(),
            expect_grid.len(),
            "window [{}, {}): non-empty cell sets differ",
            w.start,
            w.end
        );
        for (got, exp) in w.grid.iter().zip(&expect_grid) {
            assert_eq!((got.col, got.row, got.count), (exp.col, exp.row, exp.count));
            assert_eq!(got.time_range, exp.time_range);
        }
    }

    // ---- continuous query: final state equals a full scan ----------
    let (_, last_results) = state.query_results.last().expect("query results per batch");
    let region = region();
    let got_region: std::collections::HashSet<u64> = match &last_results[0].output {
        QueryOutput::Matches(m) => m.iter().map(|(_, (id, _))| *id).collect(),
        other => panic!("expected matches, got {} neighbours", other.len()),
    };
    // every record (late or not) enters the continuous-query state
    let expect_region: std::collections::HashSet<u64> = all
        .iter()
        .filter(|(o, _)| STPredicate::Intersects.eval(o, &region))
        .map(|(_, (id, _))| *id)
        .collect();
    assert_eq!(got_region, expect_region);

    let focus = STObject::point(50.0, 50.0);
    match &last_results[1].output {
        QueryOutput::Neighbors(n) => {
            assert_eq!(n.len(), 10);
            let mut exact: Vec<f64> = all
                .iter()
                .map(|(o, _)| o.distance(&focus, stark_geo::DistanceFn::Euclidean))
                .collect();
            exact.sort_by(|a, b| a.partial_cmp(b).unwrap());
            for (got, exp) in n.iter().zip(exact.iter()) {
                assert!((got.0 - exp).abs() < 1e-9, "knn distance {} vs {}", got.0, exp);
            }
        }
        other => panic!("expected neighbours, got {} matches", other.len()),
    }

    // ---- accounting ------------------------------------------------
    let per_batch = &state.batches;
    assert_eq!(per_batch.len(), BATCHES);
    assert!(per_batch.iter().all(|b| b.records == BATCH_RECORDS as u64));
    assert!(per_batch.iter().all(|b| b.partitions_touched > 0));
    assert!(per_batch.iter().all(|b| b.partitions_rebuilt > 0));
}

#[test]
fn indexed_and_unindexed_streams_agree_end_to_end() {
    let run = |engine: ContinuousQueryEngine<(u64, String)>| {
        let sink = MemorySink::new();
        let sc = StreamContext::with_config(
            Context::with_parallelism(2),
            StreamConfig { batch_records: 150, ..Default::default() },
        );
        let job = StreamJob::new()
            .with_queries(
                engine
                    .with_query(StandingQuery::filter("region", region(), STPredicate::Intersects))
                    .with_query(StandingQuery::within_distance(
                        "near",
                        STObject::point(30.0, 30.0),
                        12.0,
                    )),
            )
            .with_sink(sink.clone());
        sc.run(GeneratorSource::new(7, space(), 4, 800, 200), job);
        let state = sink.state();
        state
            .query_results
            .iter()
            .map(|(batch, rs)| {
                (
                    *batch,
                    rs.iter()
                        .map(|r| {
                            let mut ids: Vec<u64> = match &r.output {
                                QueryOutput::Matches(m) => {
                                    m.iter().map(|(_, (id, _))| *id).collect()
                                }
                                QueryOutput::Neighbors(n) => {
                                    n.iter().map(|(_, (_, (id, _)))| *id).collect()
                                }
                            };
                            ids.sort_unstable();
                            (r.name.clone(), ids)
                        })
                        .collect::<Vec<_>>(),
                )
            })
            .collect::<Vec<_>>()
    };
    let fast = run(ContinuousQueryEngine::indexed(partitioner(), 8));
    let slow = run(ContinuousQueryEngine::unindexed());
    assert_eq!(fast, slow);
}
