//! Failure-path coverage for the stream driver: a source that dies
//! mid-pump, batch-level retry exhaustion under both failure policies,
//! and watermark stability across a retried batch.

use stark::STObject;
use stark_engine::{Context, EngineConfig, FaultInjector, FaultPolicy, FaultScope};
use stark_geo::Envelope;
use stark_stream::{
    BatchFailurePolicy, GeneratorSource, LatePolicy, MemorySink, Source, StreamConfig,
    StreamContext, StreamJob, StreamReport, WindowSpec, WktSource,
};
use std::sync::Arc;

fn space() -> Envelope {
    Envelope::from_bounds(0.0, 0.0, 100.0, 100.0)
}

fn chaos_engine(max_task_retries: u32, injector: Arc<FaultInjector>) -> Context {
    Context::with_config(EngineConfig {
        parallelism: 2,
        max_task_retries,
        fault_injector: Some(injector),
        ..Default::default()
    })
}

/// Delegates to a [`GeneratorSource`] and panics after `healthy_batches`
/// pulls — a source whose upstream connection drops mid-stream.
struct DisconnectingSource {
    inner: GeneratorSource,
    healthy_batches: usize,
    served: usize,
}

impl Source<(u64, String)> for DisconnectingSource {
    fn next_batch(&mut self, max_records: usize) -> Option<Vec<(STObject, (u64, String))>> {
        if self.served == self.healthy_batches {
            panic!("source lost its upstream connection");
        }
        self.served += 1;
        self.inner.next_batch(max_records)
    }
}

#[test]
fn source_disconnect_mid_pump_ends_stream_cleanly() {
    let sc = StreamContext::with_config(
        Context::with_parallelism(2),
        StreamConfig { batch_records: 100, parallelism: 2, ..Default::default() },
    );
    let source = DisconnectingSource {
        inner: GeneratorSource::new(7, space(), 10, 500, 50),
        healthy_batches: 3,
        served: 0,
    };
    let sink = MemorySink::new();
    let job = StreamJob::new()
        .with_windows(WindowSpec::tumbling(400), 100, LatePolicy::Drop)
        .with_grid_aggregation(4, space())
        .with_sink(sink.clone());
    let report = sc.run(source, job);

    assert!(report.source_disconnected, "pump panic must be reported");
    assert!(!report.aborted);
    assert_eq!(report.batches.len(), 3, "batches pulled before the panic still process");
    assert_eq!(report.batches_failed(), 0);
    // the clean-shutdown path still flushes every open pane
    let windowed: u64 = sink.state().windows.iter().map(|w| w.count).sum();
    assert_eq!(windowed + report.late_dropped(), report.total_records());
    // an insert-only stream carries no retraction traffic, disconnect or not
    assert_eq!(report.records_retracted(), 0);
    assert_eq!(report.retractions_emitted(), 0);
}

#[test]
fn poison_records_quarantine_instead_of_killing_the_stream() {
    // 60 good records over 0..1200, with malformed lines of every shape
    // salted through the feed — a poisoned upstream export.
    let mut lines = Vec::new();
    for i in 0..60u64 {
        let t = i * 20;
        lines.push(format!("{i}\tconcert\t{t}\tPOINT({} {})", i % 10, i / 10));
        if i % 10 == 3 {
            lines.push(format!("{i}\tconcert\t{t}\tPOINT(not numbers)"));
        }
        if i % 10 == 7 {
            lines.push("truncated line".to_string());
        }
    }
    let source = WktSource::new(lines);
    let sc = StreamContext::with_config(
        Context::with_parallelism(2),
        StreamConfig { batch_records: 16, parallelism: 2, ..Default::default() },
    );
    let sink = MemorySink::new();
    let job = StreamJob::new()
        .with_windows(WindowSpec::tumbling(400), 100, LatePolicy::Drop)
        .with_grid_aggregation(4, space())
        .with_sink(sink.clone());
    let report = sc.run(source, job);

    assert!(!report.source_disconnected, "quarantine must replace the pump panic");
    assert!(!report.aborted);
    assert_eq!(report.records_quarantined, 12, "6 bad-WKT + 6 truncated lines");
    assert_eq!(report.total_records(), 60, "every well-formed record is processed");
    // the healthy records still produce full window output
    let windowed: u64 = sink.state().windows.iter().map(|w| w.count).sum();
    assert_eq!(windowed + report.late_dropped(), 60);
    assert!(report.windows_fired() + sink.state().windows.len() as u64 > 0);
    // watermark = max observed event time (59·20) − allowed lateness
    assert_eq!(report.final_watermark, Some(59 * 20 - 100));
    // quarantined records vanish before the operators: they are never
    // retracted, and the recompute path never emits corrections
    assert_eq!(report.records_retracted(), 0);
    assert_eq!(report.retractions_emitted(), 0);
}

/// Shared fixture for the exhaustion tests: every engine task panics
/// (probability 1.0, no engine retries), so every pane aggregation
/// spends its batch retry budget and fails permanently.
fn run_with_poisoned_engine(policy: BatchFailurePolicy) -> StreamReport {
    let chaos =
        Arc::new(FaultInjector::new(0xBAD5EED, FaultScope::Probability(1.0), FaultPolicy::Panic));
    let sc = StreamContext::with_config(
        chaos_engine(0, chaos),
        StreamConfig {
            batch_records: 100,
            parallelism: 2,
            channel_capacity: 2,
            max_batch_retries: 1,
            failure_policy: policy,
            ..Default::default()
        },
    );
    let source = GeneratorSource::new(21, space(), 6, 500, 50);
    let job = StreamJob::new()
        .with_windows(WindowSpec::tumbling(400), 50, LatePolicy::Drop)
        .with_grid_aggregation(4, space())
        .with_sink(MemorySink::new());
    sc.run(source, job)
}

#[test]
fn retry_exhaustion_skip_keeps_pumping() {
    let report = run_with_poisoned_engine(BatchFailurePolicy::Skip);
    assert!(!report.aborted);
    assert_eq!(report.batches.len(), 6, "a poisoned batch must not stall the stream");
    assert!(report.batches_failed() >= 1, "permanent failures must be recorded");
    assert!(
        report.aggregation_retries() >= report.batches_failed(),
        "every failed pane spent its retry budget first"
    );
    // failed and retried batches still never fabricate retraction traffic
    assert_eq!(report.records_retracted(), 0);
    assert_eq!(report.retractions_emitted(), 0);
}

#[test]
fn retry_exhaustion_abort_stops_driver() {
    let report = run_with_poisoned_engine(BatchFailurePolicy::Abort);
    assert!(report.aborted, "Abort policy must stop the driver loop");
    assert_eq!(report.batches_failed(), 1, "driver stops at the first permanent failure");
    assert!(report.batches.last().expect("at least one batch").failed);
    assert!(report.batches.len() < 6, "batches queued after the failure are discarded");
}

/// Runs the reference stream job and returns the report plus the fired
/// panes as comparable `(start, end, count, grid_total)` rows.
fn run_windowed_stream(ctx: Context) -> (StreamReport, Vec<(i64, i64, u64, u64)>) {
    let sc = StreamContext::with_config(
        ctx,
        StreamConfig {
            batch_records: 100,
            parallelism: 2,
            max_batch_retries: 2,
            ..Default::default()
        },
    );
    let source = GeneratorSource::new(42, space(), 5, 500, 50);
    let sink = MemorySink::new();
    let job = StreamJob::new()
        .with_windows(WindowSpec::tumbling(400), 50, LatePolicy::Drop)
        .with_grid_aggregation(4, space())
        .with_sink(sink.clone());
    let report = sc.run(source, job);
    let panes = sink
        .state()
        .windows
        .iter()
        .map(|w| (w.start, w.end, w.count, w.grid.iter().map(|c| c.count).sum()))
        .collect();
    (report, panes)
}

#[test]
fn watermark_stable_across_retried_batch() {
    let (clean, clean_panes) = run_windowed_stream(Context::with_parallelism(2));

    // Stage-scoped permanent fault with no engine retries: the first
    // pane aggregation fails outright, and only the batch-level retry —
    // re-running it as fresh engine jobs with fresh stage ordinals —
    // can recover it.
    let chaos = Arc::new(FaultInjector::new(9, FaultScope::Stage(0), FaultPolicy::Panic));
    let (faulty, faulty_panes) = run_windowed_stream(chaos_engine(0, Arc::clone(&chaos)));

    assert!(chaos.injected() >= 1, "the stage-0 fault must actually fire");
    assert!(faulty.aggregation_retries() >= 1, "the poisoned pane must retry");
    assert_eq!(faulty.batches_failed(), 0, "a fresh stage ordinal recovers the batch");
    assert_eq!(
        faulty.final_watermark, clean.final_watermark,
        "the watermark is a pure function of observed events; retries must not move it"
    );
    assert!(faulty.final_watermark.is_some());
    assert_eq!(faulty.total_records(), clean.total_records());
    assert_eq!(clean_panes, faulty_panes, "retried pane output must match the clean run");
    // a retried pane re-aggregates; it must never be "corrected" via
    // retraction traffic on the recompute path
    assert_eq!(faulty.records_retracted(), 0);
    assert_eq!(faulty.retractions_emitted(), 0);
}
