//! Differential property tests: the STR-tree must agree with the naive
//! linear-scan oracle on every query.

use proptest::prelude::*;
use stark_geo::{Coord, Envelope};
use stark_index::{Entry, NaiveIndex, StrTree};

fn entries_strategy() -> impl Strategy<Value = Vec<Entry<usize>>> {
    proptest::collection::vec(
        ((-100.0f64..100.0), (-100.0f64..100.0), (0.0f64..20.0), (0.0f64..20.0)),
        0..300,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (x, y, w, h))| Entry::new(Envelope::from_bounds(x, y, x + w, y + h), i))
            .collect()
    })
}

fn query_strategy() -> impl Strategy<Value = Envelope> {
    ((-120.0f64..120.0), (-120.0f64..120.0), (0.0f64..80.0), (0.0f64..80.0))
        .prop_map(|(x, y, w, h)| Envelope::from_bounds(x, y, x + w, y + h))
}

proptest! {
    #[test]
    fn range_query_matches_naive(
        entries in entries_strategy(),
        query in query_strategy(),
        order in 2usize..12,
    ) {
        let naive = NaiveIndex::new(entries.clone());
        let tree = StrTree::build(order, entries);
        prop_assert_eq!(tree.len(), naive.len());

        let mut got: Vec<usize> = tree.query_vec(&query).into_iter().map(|e| e.item).collect();
        let mut expect: Vec<usize> =
            naive.query_vec(&query).into_iter().map(|e| e.item).collect();
        got.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn knn_matches_naive_distances(
        entries in entries_strategy(),
        (tx, ty) in ((-120.0f64..120.0), (-120.0f64..120.0)),
        k in 0usize..20,
    ) {
        let target = Coord::new(tx, ty);
        let naive = NaiveIndex::new(entries.clone());
        let tree = StrTree::build(5, entries);

        let got = tree.nearest_k(&target, k);
        let expect = naive.nearest_k(&target, k);
        prop_assert_eq!(got.len(), expect.len());
        // Items may differ on ties; the distance sequences must match.
        for (g, e) in got.iter().zip(expect.iter()) {
            prop_assert!((g.0 - e.0).abs() < 1e-9, "{} vs {}", g.0, e.0);
        }
        // ascending order
        prop_assert!(got.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn bounds_cover_all_entries(entries in entries_strategy(), order in 2usize..12) {
        let tree = StrTree::build(order, entries.clone());
        let bounds = tree.bounds();
        for e in &entries {
            prop_assert!(bounds.contains_envelope(&e.envelope));
        }
        // querying the full bounds returns every entry
        if !entries.is_empty() {
            prop_assert_eq!(tree.query_vec(&bounds).len(), entries.len());
        }
    }

    #[test]
    fn iter_yields_every_entry(entries in entries_strategy(), order in 2usize..12) {
        let tree = StrTree::build(order, entries.clone());
        let mut seen: Vec<usize> = tree.iter().map(|e| e.item).collect();
        seen.sort_unstable();
        let expect: Vec<usize> = (0..entries.len()).collect();
        prop_assert_eq!(seen, expect);
    }

    #[test]
    fn serde_preserves_query_results(
        entries in entries_strategy(),
        query in query_strategy(),
    ) {
        let tree = StrTree::build(5, entries);
        let json = serde_json::to_string(&tree).unwrap();
        let back: StrTree<usize> = serde_json::from_str(&json).unwrap();
        let mut a: Vec<usize> = tree.query_vec(&query).into_iter().map(|e| e.item).collect();
        let mut b: Vec<usize> = back.query_vec(&query).into_iter().map(|e| e.item).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }
}
