//! A Sort-Tile-Recursive packed R-tree.
//!
//! This is the reproduction's equivalent of the JTS `STRtree` that STARK
//! uses for live and persistent indexing (paper §2.2). The tree is built
//! once from a batch of `(Envelope, item)` entries — exactly the shape of
//! "index the content of a partition" — and then serves:
//!
//! * envelope range queries ([`StrTree::query`]), returning *candidates*
//!   whose MBRs intersect the query MBR (callers refine with the exact
//!   predicate, mirroring STARK's candidate-pruning step);
//! * k-nearest-neighbour queries ([`StrTree::nearest_k`]) via classic
//!   best-first branch-and-bound on envelope distances.

use serde::{Deserialize, Serialize};
use stark_geo::{Coord, Envelope};

/// Default node capacity ("order of the tree"); the paper's running
/// example uses `liveIndex(order = 5)`.
pub const DEFAULT_ORDER: usize = 5;

/// One indexed item: its minimum bounding rectangle plus the payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Entry<T> {
    pub envelope: Envelope,
    pub item: T,
}

impl<T> Entry<T> {
    pub fn new(envelope: Envelope, item: T) -> Self {
        Entry { envelope, item }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node<T> {
    Leaf { bounds: Envelope, entries: Vec<Entry<T>> },
    Inner { bounds: Envelope, children: Vec<Node<T>> },
}

impl<T> Node<T> {
    fn bounds(&self) -> &Envelope {
        match self {
            Node::Leaf { bounds, .. } | Node::Inner { bounds, .. } => bounds,
        }
    }
}

/// A bulk-loaded, immutable R-tree packed with the STR algorithm.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StrTree<T> {
    root: Option<Node<T>>,
    order: usize,
    len: usize,
}

impl<T> StrTree<T> {
    /// Bulk-loads a tree with the given node capacity (`order >= 2`).
    ///
    /// Sort-Tile-Recursive packing: entries are sorted by MBR-centre x and
    /// cut into vertical slices of ~`sqrt(n/order)` columns; each slice is
    /// sorted by centre y and cut into runs of `order` entries, producing
    /// leaves with near-unit fill factor. The process repeats on the node
    /// MBRs until a single root remains.
    pub fn build(order: usize, entries: Vec<Entry<T>>) -> Self {
        let order = order.max(2);
        let len = entries.len();
        if entries.is_empty() {
            return StrTree { root: None, order, len: 0 };
        }

        // Pack the leaf level.
        let mut level: Vec<Node<T>> = str_pack(entries, order, |e| e.envelope)
            .into_iter()
            .map(|group| {
                let mut bounds = Envelope::empty();
                for e in &group {
                    bounds.expand_to_include_envelope(&e.envelope);
                }
                Node::Leaf { bounds, entries: group }
            })
            .collect();

        // Pack upper levels until one node remains.
        while level.len() > 1 {
            level = str_pack(level, order, |n| *n.bounds())
                .into_iter()
                .map(|group| {
                    let mut bounds = Envelope::empty();
                    for n in &group {
                        bounds.expand_to_include_envelope(n.bounds());
                    }
                    Node::Inner { bounds, children: group }
                })
                .collect();
        }

        StrTree { root: level.pop(), order, len }
    }

    /// Builds with [`DEFAULT_ORDER`].
    pub fn build_default(entries: Vec<Entry<T>>) -> Self {
        Self::build(DEFAULT_ORDER, entries)
    }

    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The node capacity this tree was built with.
    pub fn order(&self) -> usize {
        self.order
    }

    /// MBR of everything in the tree; empty envelope when empty.
    pub fn bounds(&self) -> Envelope {
        self.root.as_ref().map_or_else(Envelope::empty, |r| *r.bounds())
    }

    /// Returns references to all entries whose MBR intersects `query`.
    ///
    /// These are candidates in the R-tree sense: the caller must re-check
    /// the exact geometry predicate.
    pub fn query<'a>(&'a self, query: &Envelope, out: &mut Vec<&'a Entry<T>>) {
        if let Some(root) = &self.root {
            query_node(root, query, out);
        }
    }

    /// Convenience wrapper over [`StrTree::query`] allocating the result.
    pub fn query_vec(&self, query: &Envelope) -> Vec<&Entry<T>> {
        let mut out = Vec::new();
        self.query(query, &mut out);
        out
    }

    /// Visits every entry whose MBR intersects `query`.
    pub fn for_each_candidate<'a>(&'a self, query: &Envelope, f: &mut impl FnMut(&'a Entry<T>)) {
        fn walk<'a, T>(node: &'a Node<T>, query: &Envelope, f: &mut impl FnMut(&'a Entry<T>)) {
            match node {
                Node::Leaf { bounds, entries } => {
                    if bounds.intersects(query) {
                        for e in entries {
                            if e.envelope.intersects(query) {
                                f(e);
                            }
                        }
                    }
                }
                Node::Inner { bounds, children } => {
                    if bounds.intersects(query) {
                        for c in children {
                            walk(c, query, f);
                        }
                    }
                }
            }
        }
        if let Some(root) = &self.root {
            walk(root, query, f);
        }
    }

    /// The `k` entries nearest to `target` by envelope distance, ascending.
    ///
    /// Envelope distance equals true Euclidean distance for point items;
    /// for extended geometries it is a lower bound, so callers wanting
    /// exact geometric kNN should over-fetch and refine.
    pub fn nearest_k<'a>(&'a self, target: &Coord, k: usize) -> Vec<(f64, &'a Entry<T>)> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        enum Item<'a, T> {
            Node(&'a Node<T>),
            Entry(&'a Entry<T>),
        }

        let mut result: Vec<(f64, &Entry<T>)> = Vec::with_capacity(k);
        let Some(root) = &self.root else { return result };
        if k == 0 {
            return result;
        }

        let mut heap: BinaryHeap<(Reverse<OrdF64>, usize)> = BinaryHeap::new();
        let mut arena: Vec<Item<'a, T>> = Vec::new();
        arena.push(Item::Node(root));
        heap.push((Reverse(OrdF64(root.bounds().distance_to_coord(target))), 0));

        while let Some((Reverse(OrdF64(dist)), idx)) = heap.pop() {
            match arena[idx] {
                Item::Entry(e) => {
                    result.push((dist, e));
                    if result.len() == k {
                        break;
                    }
                }
                Item::Node(node) => match node {
                    Node::Leaf { entries, .. } => {
                        for e in entries {
                            let d = e.envelope.distance_to_coord(target);
                            arena.push(Item::Entry(e));
                            heap.push((Reverse(OrdF64(d)), arena.len() - 1));
                        }
                    }
                    Node::Inner { children, .. } => {
                        for c in children {
                            let d = c.bounds().distance_to_coord(target);
                            arena.push(Item::Node(c));
                            heap.push((Reverse(OrdF64(d)), arena.len() - 1));
                        }
                    }
                },
            }
        }
        result
    }

    /// Iterates over every entry in the tree (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = &Entry<T>> {
        let mut node_stack: Vec<&Node<T>> = self.root.iter().collect();
        let mut leaf: std::slice::Iter<'_, Entry<T>> = [].iter();
        std::iter::from_fn(move || loop {
            if let Some(e) = leaf.next() {
                return Some(e);
            }
            match node_stack.pop()? {
                Node::Leaf { entries, .. } => leaf = entries.iter(),
                Node::Inner { children, .. } => node_stack.extend(children.iter()),
            }
        })
    }

    /// Depth of the tree (0 when empty, 1 for a single leaf).
    pub fn depth(&self) -> usize {
        fn d<T>(n: &Node<T>) -> usize {
            match n {
                Node::Leaf { .. } => 1,
                Node::Inner { children, .. } => 1 + children.iter().map(d).max().unwrap_or(0),
            }
        }
        self.root.as_ref().map_or(0, d)
    }

    /// Collects references to all entries.
    pub fn entries(&self) -> Vec<&Entry<T>> {
        let mut out = Vec::with_capacity(self.len);
        fn walk<'a, T>(n: &'a Node<T>, out: &mut Vec<&'a Entry<T>>) {
            match n {
                Node::Leaf { entries, .. } => out.extend(entries.iter()),
                Node::Inner { children, .. } => children.iter().for_each(|c| walk(c, out)),
            }
        }
        if let Some(root) = &self.root {
            walk(root, &mut out);
        }
        out
    }
}

fn query_node<'a, T>(node: &'a Node<T>, query: &Envelope, out: &mut Vec<&'a Entry<T>>) {
    match node {
        Node::Leaf { bounds, entries } => {
            if bounds.intersects(query) {
                for e in entries {
                    if e.envelope.intersects(query) {
                        out.push(e);
                    }
                }
            }
        }
        Node::Inner { bounds, children } => {
            if bounds.intersects(query) {
                for c in children {
                    query_node(c, query, out);
                }
            }
        }
    }
}

/// Groups `items` into runs of at most `order` using STR tiling.
fn str_pack<I>(mut items: Vec<I>, order: usize, env_of: impl Fn(&I) -> Envelope) -> Vec<Vec<I>> {
    let n = items.len();
    let num_groups = n.div_ceil(order);
    if num_groups <= 1 {
        return vec![items];
    }
    let num_slices = (num_groups as f64).sqrt().ceil() as usize;
    let slice_cap = num_groups.div_ceil(num_slices) * order;

    items.sort_by(|a, b| {
        let ca = env_of(a).center().x;
        let cb = env_of(b).center().x;
        ca.partial_cmp(&cb).unwrap_or(std::cmp::Ordering::Equal)
    });

    let mut groups = Vec::with_capacity(num_groups);
    let mut rest = items;
    while !rest.is_empty() {
        let take = slice_cap.min(rest.len());
        let mut slice: Vec<I> = rest.drain(..take).collect();
        slice.sort_by(|a, b| {
            let ca = env_of(a).center().y;
            let cb = env_of(b).center().y;
            ca.partial_cmp(&cb).unwrap_or(std::cmp::Ordering::Equal)
        });
        while !slice.is_empty() {
            let take = order.min(slice.len());
            groups.push(slice.drain(..take).collect());
        }
    }
    groups
}

/// Total-order wrapper for f64 distances (never NaN in this crate).
#[derive(PartialEq, PartialOrd)]
struct OrdF64(f64);

impl Eq for OrdF64 {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.partial_cmp(other).unwrap_or(std::cmp::Ordering::Equal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point_entries(pts: &[(f64, f64)]) -> Vec<Entry<usize>> {
        pts.iter()
            .enumerate()
            .map(|(i, &(x, y))| Entry::new(Envelope::from_point(Coord::new(x, y)), i))
            .collect()
    }

    #[test]
    fn empty_tree() {
        let t: StrTree<usize> = StrTree::build(5, vec![]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.depth(), 0);
        assert!(t.bounds().is_empty());
        assert!(t.query_vec(&Envelope::from_bounds(0.0, 0.0, 1.0, 1.0)).is_empty());
        assert!(t.nearest_k(&Coord::new(0.0, 0.0), 3).is_empty());
    }

    #[test]
    fn single_entry() {
        let t = StrTree::build(5, point_entries(&[(1.0, 1.0)]));
        assert_eq!(t.len(), 1);
        assert_eq!(t.depth(), 1);
        assert_eq!(t.query_vec(&Envelope::from_bounds(0.0, 0.0, 2.0, 2.0)).len(), 1);
        assert!(t.query_vec(&Envelope::from_bounds(2.0, 2.0, 3.0, 3.0)).is_empty());
    }

    #[test]
    fn query_matches_linear_scan() {
        let pts: Vec<(f64, f64)> = (0..100).map(|i| ((i % 10) as f64, (i / 10) as f64)).collect();
        let t = StrTree::build(4, point_entries(&pts));
        assert_eq!(t.len(), 100);
        let q = Envelope::from_bounds(2.5, 2.5, 6.5, 4.5);
        let mut got: Vec<usize> = t.query_vec(&q).into_iter().map(|e| e.item).collect();
        got.sort_unstable();
        let mut expect: Vec<usize> = pts
            .iter()
            .enumerate()
            .filter(|(_, &(x, y))| q.contains_coord(&Coord::new(x, y)))
            .map(|(i, _)| i)
            .collect();
        expect.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn nearest_k_ordering() {
        let pts: Vec<(f64, f64)> = (0..50).map(|i| (i as f64, 0.0)).collect();
        let t = StrTree::build(5, point_entries(&pts));
        let nn = t.nearest_k(&Coord::new(10.2, 0.0), 3);
        let items: Vec<usize> = nn.iter().map(|(_, e)| e.item).collect();
        assert_eq!(items, vec![10, 11, 9]);
        // distances ascend
        assert!(nn.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn nearest_k_larger_than_len_returns_all() {
        let t = StrTree::build(3, point_entries(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]));
        assert_eq!(t.nearest_k(&Coord::new(0.0, 0.0), 10).len(), 3);
        assert!(t.nearest_k(&Coord::new(0.0, 0.0), 0).is_empty());
    }

    #[test]
    fn deep_tree_structure() {
        let pts: Vec<(f64, f64)> = (0..1000).map(|i| ((i % 33) as f64, (i / 33) as f64)).collect();
        let t = StrTree::build(4, point_entries(&pts));
        assert!(t.depth() >= 4, "depth {}", t.depth());
        assert_eq!(t.entries().len(), 1000);
        // full-space query returns everything
        assert_eq!(t.query_vec(&t.bounds()).len(), 1000);
    }

    #[test]
    fn rect_entries_candidates_are_superset() {
        // two rectangles whose MBRs intersect the query but whose exact
        // geometry may not — the tree must return them as candidates.
        let entries = vec![
            Entry::new(Envelope::from_bounds(0.0, 0.0, 4.0, 4.0), "a"),
            Entry::new(Envelope::from_bounds(10.0, 10.0, 14.0, 14.0), "b"),
        ];
        let t = StrTree::build(5, entries);
        let q = Envelope::from_bounds(3.0, 3.0, 5.0, 5.0);
        let got = t.query_vec(&q);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].item, "a");
    }

    #[test]
    fn order_is_clamped() {
        let t = StrTree::build(0, point_entries(&[(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)]));
        assert_eq!(t.order(), 2);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn all_identical_coordinates() {
        // mass of coincident points must not break packing or queries
        let entries: Vec<Entry<usize>> =
            (0..500).map(|i| Entry::new(Envelope::from_point(Coord::new(3.0, 3.0)), i)).collect();
        let t = StrTree::build(4, entries);
        assert_eq!(t.len(), 500);
        assert_eq!(t.query_vec(&Envelope::from_point(Coord::new(3.0, 3.0))).len(), 500);
        assert!(t.query_vec(&Envelope::from_point(Coord::new(3.1, 3.0))).is_empty());
        let nn = t.nearest_k(&Coord::new(0.0, 0.0), 7);
        assert_eq!(nn.len(), 7);
        assert!(nn.iter().all(|(d, _)| (*d - 18.0f64.sqrt()).abs() < 1e-9));
    }

    #[test]
    fn huge_order_single_leaf() {
        let entries = point_entries(&[(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)]);
        let t = StrTree::build(1000, entries);
        assert_eq!(t.depth(), 1);
        assert_eq!(t.query_vec(&t.bounds()).len(), 3);
    }

    #[test]
    fn negative_and_mixed_coordinates() {
        let t = StrTree::build(
            3,
            point_entries(&[(-10.0, -10.0), (0.0, 0.0), (10.0, 10.0), (-5.0, 5.0)]),
        );
        let q = Envelope::from_bounds(-11.0, -11.0, -4.0, 6.0);
        let mut got: Vec<usize> = t.query_vec(&q).into_iter().map(|e| e.item).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 3]);
    }

    #[test]
    fn serde_roundtrip() {
        let pts: Vec<(f64, f64)> = (0..64).map(|i| (i as f64, (i * 7 % 13) as f64)).collect();
        let t = StrTree::build(5, point_entries(&pts));
        let json = serde_json::to_string(&t).unwrap();
        let back: StrTree<usize> = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), t.len());
        let q = Envelope::from_bounds(3.0, 0.0, 20.0, 9.0);
        let mut a: Vec<usize> = t.query_vec(&q).into_iter().map(|e| e.item).collect();
        let mut b: Vec<usize> = back.query_vec(&q).into_iter().map(|e| e.item).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn for_each_candidate_agrees_with_query() {
        let pts: Vec<(f64, f64)> = (0..200).map(|i| ((i % 20) as f64, (i / 20) as f64)).collect();
        let t = StrTree::build(6, point_entries(&pts));
        let q = Envelope::from_bounds(1.0, 1.0, 7.0, 5.0);
        let mut via_cb = Vec::new();
        t.for_each_candidate(&q, &mut |e| via_cb.push(e.item));
        let mut via_q: Vec<usize> = t.query_vec(&q).into_iter().map(|e| e.item).collect();
        via_cb.sort_unstable();
        via_q.sort_unstable();
        assert_eq!(via_cb, via_q);
    }
}
