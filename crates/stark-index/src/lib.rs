//! # stark-index — STR-tree spatial indexing
//!
//! The reproduction's substitute for the R-tree (an STR-tree, to be
//! precise) that STARK borrows from JTS (paper §2.2). The tree is bulk
//! loaded from a partition's content, answers envelope range queries with
//! *candidates* that the caller refines with the exact predicate, and
//! supports best-first k-nearest-neighbour search. Trees are `serde`
//! serialisable, which is what makes STARK's *persistent indexing* mode
//! possible.
//!
//! ```
//! use stark_index::{Entry, StrTree};
//! use stark_geo::{Coord, Envelope};
//!
//! let entries = (0..100)
//!     .map(|i| Entry::new(Envelope::from_point(Coord::new(i as f64, 0.0)), i))
//!     .collect();
//! let tree = StrTree::build(5, entries);
//! let hits = tree.query_vec(&Envelope::from_bounds(10.5, -1.0, 13.5, 1.0));
//! assert_eq!(hits.len(), 3);
//! ```

pub mod naive;
pub mod strtree;

pub use naive::NaiveIndex;
pub use strtree::{Entry, StrTree, DEFAULT_ORDER};
