//! A linear-scan "index" used as the differential-testing oracle and as
//! the *no indexing* execution mode (paper §2.2: "all items within a
//! partition have to be evaluated with the respective predicate").

use crate::strtree::Entry;
use stark_geo::{Coord, Envelope};

/// Stores entries in insertion order and answers every query by scanning.
#[derive(Debug, Clone, Default)]
pub struct NaiveIndex<T> {
    entries: Vec<Entry<T>>,
}

impl<T> NaiveIndex<T> {
    pub fn new(entries: Vec<Entry<T>>) -> Self {
        NaiveIndex { entries }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries whose envelope intersects `query`.
    pub fn query_vec(&self, query: &Envelope) -> Vec<&Entry<T>> {
        self.entries.iter().filter(|e| e.envelope.intersects(query)).collect()
    }

    /// The `k` entries nearest to `target` by envelope distance, ascending.
    pub fn nearest_k(&self, target: &Coord, k: usize) -> Vec<(f64, &Entry<T>)> {
        let mut all: Vec<(f64, &Entry<T>)> =
            self.entries.iter().map(|e| (e.envelope.distance_to_coord(target), e)).collect();
        all.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        all.truncate(k);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_query() {
        let idx = NaiveIndex::new(vec![
            Entry::new(Envelope::from_point(Coord::new(0.0, 0.0)), 'a'),
            Entry::new(Envelope::from_point(Coord::new(5.0, 5.0)), 'b'),
        ]);
        assert_eq!(idx.len(), 2);
        let got = idx.query_vec(&Envelope::from_bounds(-1.0, -1.0, 1.0, 1.0));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].item, 'a');
    }

    #[test]
    fn knn_orders_by_distance() {
        let idx = NaiveIndex::new(vec![
            Entry::new(Envelope::from_point(Coord::new(10.0, 0.0)), 1),
            Entry::new(Envelope::from_point(Coord::new(1.0, 0.0)), 2),
            Entry::new(Envelope::from_point(Coord::new(4.0, 0.0)), 3),
        ]);
        let nn = idx.nearest_k(&Coord::new(0.0, 0.0), 2);
        assert_eq!(nn.iter().map(|(_, e)| e.item).collect::<Vec<_>>(), vec![2, 3]);
    }
}
