//! # stark-baselines — comparison systems for the paper's evaluation
//!
//! The paper's Figure 4 compares STARK against two other Spark-based
//! spatial frameworks. Neither is usable from Rust, so this crate
//! reimplements their *published join strategies* on the same engine,
//! isolating exactly the algorithmic differences the paper attributes to
//! STARK:
//!
//! * [`geospark_join`] — GeoSpark-style replicate-to-all-overlapping
//!   partitions with an id-tagging pass and a duplicate-elimination
//!   shuffle (optionally disabled to reproduce the duplicate-results bug
//!   the paper reports);
//! * [`spatialspark_join`] — SpatialSpark-style tile join with
//!   reference-point duplicate avoidance;
//! * [`broadcast_join`] — plain all-pairs evaluation ("no partitioning");
//! * [`RegionScheme`] — the grid ("Tile") and Voronoi region layouts the
//!   baselines partition with.

mod geospark;
mod scheme;
mod spatialspark;

pub use geospark::{geospark_join, id_pairs, GeoSparkConfig, GeoSparkPair};
pub use scheme::RegionScheme;
pub use spatialspark::{broadcast_join, spatialspark_join};
