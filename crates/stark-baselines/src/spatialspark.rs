//! SpatialSpark-style joins (You, Zhang & Gruenwald, ICDEW'15 —
//! "Large-scale spatial join query processing in cloud"), reimplemented
//! on this engine.
//!
//! *Partitioned* join: both inputs are replicated to overlapping grid
//! tiles; each tile joins locally and reports a pair only when the pair's
//! **reference point** (the min-corner of the envelope intersection)
//! falls inside the tile — each pair is thus emitted by exactly one tile
//! and no dedup shuffle is needed.
//!
//! *Broadcast* join ("no partitioning"): the plain all-pairs evaluation
//! one would write directly on the engine, included for the paper's
//! "No Partitioning" bars.

use crate::scheme::RegionScheme;
use stark::{STObject, STPredicate};
use stark_engine::{Rdd, StoreData};
use stark_geo::{Coord, Envelope};
use stark_index::{Entry, StrTree};
use std::sync::Arc;

/// Reference point of a matched pair: the minimum corner of the
/// intersection of the two (probe-buffered) envelopes. Guaranteed to lie
/// in at least one tile both sides were replicated to.
fn reference_point(left_probe: &Envelope, right: &Envelope) -> Option<Coord> {
    left_probe.intersection(right).map(|i| Coord::new(i.min_x(), i.min_y()))
}

/// Tile index of a coordinate within the scheme; points outside every
/// tile map to the overflow partition. O(1) for grid schemes.
fn tile_of(scheme: &RegionScheme, c: &Coord) -> usize {
    scheme.locate(c)
}

/// SpatialSpark-style tile join with reference-point duplicate avoidance.
pub fn spatialspark_join<V: StoreData, W: StoreData>(
    left: &Rdd<(STObject, V)>,
    right: &Rdd<(STObject, W)>,
    scheme: &RegionScheme,
    pred: STPredicate,
    index_order: usize,
) -> Rdd<((STObject, V), (STObject, W))> {
    let scheme = Arc::new(scheme.clone());
    let num = scheme.num_partitions();
    let buffer = match pred {
        STPredicate::WithinDistance { max_dist, .. } => max_dist,
        _ => 0.0,
    };

    let s1 = scheme.clone();
    let left_placed = left
        .flat_map(move |(o, v)| {
            let env = o.envelope().buffered(buffer);
            s1.targets(&env).into_iter().map(|t| (t, (o.clone(), v.clone()))).collect::<Vec<_>>()
        })
        .partition_by(num, |(t, _)| *t)
        .map(|(_, r)| r);
    let s2 = scheme.clone();
    let right_placed = right
        .flat_map(move |(o, w)| {
            let env = o.envelope();
            s2.targets(&env).into_iter().map(|t| (t, (o.clone(), w.clone()))).collect::<Vec<_>>()
        })
        .partition_by(num, |(t, _)| *t)
        .map(|(_, r)| r);

    let s3 = scheme.clone();
    left_placed.zip_partitions(&right_placed, move |part, ldata, rdata| {
        let entries: Vec<Entry<usize>> =
            rdata.iter().enumerate().map(|(i, (o, _))| Entry::new(o.envelope(), i)).collect();
        let tree = StrTree::build(index_order, entries);
        let mut out = Vec::new();
        for l in &ldata {
            let probe = pred.index_probe(&l.0);
            tree.for_each_candidate(&probe, &mut |e| {
                let r = &rdata[e.item];
                // reference-point test: emit only in the owning tile
                let owns = match reference_point(&probe, &r.0.envelope()) {
                    Some(rp) => tile_of(&s3, &rp) == part,
                    None => false,
                };
                if owns && pred.eval(&l.0, &r.0) {
                    out.push((l.clone(), r.clone()));
                }
            });
        }
        out
    })
}

/// Broadcast/no-partitioning join: all partition pairs, nested loops, no
/// pruning — the baseline a plain engine user would write.
pub fn broadcast_join<V: StoreData, W: StoreData>(
    left: &Rdd<(STObject, V)>,
    right: &Rdd<(STObject, W)>,
    pred: STPredicate,
) -> Rdd<((STObject, V), (STObject, W))> {
    let ln = left.num_partitions();
    let rn = right.num_partitions();
    let mut pairs = Vec::with_capacity(ln * rn);
    for i in 0..ln {
        for j in 0..rn {
            pairs.push((i, j));
        }
    }
    let lc = left.cache();
    let rc = right.cache();
    lc.join_partition_pairs(&rc, pairs, move |ldata, rdata| {
        let mut out = Vec::new();
        for l in &ldata {
            for r in &rdata {
                if pred.eval(&l.0, &r.0) {
                    out.push((l.clone(), r.clone()));
                }
            }
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use stark_engine::Context;

    fn points(ctx: &Context, pts: &[(f64, f64)]) -> Rdd<(STObject, u32)> {
        let data: Vec<(STObject, u32)> =
            pts.iter().enumerate().map(|(i, &(x, y))| (STObject::point(x, y), i as u32)).collect();
        ctx.parallelize(data, 4)
    }

    fn ids(joined: Vec<((STObject, u32), (STObject, u32))>) -> Vec<(u32, u32)> {
        let mut out: Vec<(u32, u32)> = joined.into_iter().map(|((_, a), (_, b))| (a, b)).collect();
        out.sort_unstable();
        out
    }

    fn reference(a: &[(f64, f64)], b: &[(f64, f64)], pred: STPredicate) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for (i, &(x1, y1)) in a.iter().enumerate() {
            for (j, &(x2, y2)) in b.iter().enumerate() {
                if pred.eval(&STObject::point(x1, y1), &STObject::point(x2, y2)) {
                    out.push((i as u32, j as u32));
                }
            }
        }
        out.sort_unstable();
        out
    }

    #[test]
    fn tile_join_matches_reference_without_dedup_shuffle() {
        let ctx = Context::with_parallelism(4);
        let pts: Vec<(f64, f64)> =
            (0..120).map(|i| (((i * 3) % 17) as f64, ((i * 7) % 13) as f64)).collect();
        let rdd = points(&ctx, &pts);
        let scheme = RegionScheme::grid(4, &Envelope::from_bounds(0.0, 0.0, 17.0, 13.0));
        let joined = spatialspark_join(&rdd, &rdd, &scheme, STPredicate::Intersects, 5);
        assert_eq!(ids(joined.collect()), reference(&pts, &pts, STPredicate::Intersects));
    }

    #[test]
    fn spanning_pairs_reported_exactly_once() {
        let ctx = Context::with_parallelism(2);
        let regions: Vec<(STObject, u32)> =
            vec![(STObject::from_wkt("POLYGON((2 2, 8 2, 8 8, 2 8, 2 2))").unwrap(), 0)];
        let pts: Vec<(STObject, u32)> = vec![(STObject::point(5.0, 5.0), 0)];
        let left = ctx.parallelize(regions, 1);
        let right = ctx.parallelize(pts, 1);
        let scheme = RegionScheme::grid(2, &Envelope::from_bounds(0.0, 0.0, 10.0, 10.0));
        let joined = spatialspark_join(&left, &right, &scheme, STPredicate::Intersects, 5);
        assert_eq!(joined.count(), 1, "reference point dedup must keep one copy");
    }

    #[test]
    fn distance_tile_join() {
        let ctx = Context::with_parallelism(2);
        let a = points(&ctx, &[(4.9, 5.0), (0.0, 0.0)]);
        let b = points(&ctx, &[(5.1, 5.0), (9.0, 9.0)]);
        let scheme = RegionScheme::grid(2, &Envelope::from_bounds(0.0, 0.0, 10.0, 10.0));
        let joined = spatialspark_join(&a, &b, &scheme, STPredicate::within_distance(2.0), 5);
        assert_eq!(ids(joined.collect()), vec![(0, 0)]);
    }

    #[test]
    fn broadcast_join_matches_reference() {
        let ctx = Context::with_parallelism(4);
        let pts: Vec<(f64, f64)> =
            (0..60).map(|i| (((i * 5) % 11) as f64, ((i * 3) % 7) as f64)).collect();
        let rdd = points(&ctx, &pts);
        let joined = broadcast_join(&rdd, &rdd, STPredicate::Intersects);
        assert_eq!(ids(joined.collect()), reference(&pts, &pts, STPredicate::Intersects));
    }

    #[test]
    fn out_of_scheme_points_still_join_via_overflow() {
        let ctx = Context::with_parallelism(2);
        // both points outside the grid → overflow partition joins them
        let a = points(&ctx, &[(100.0, 100.0)]);
        let b = points(&ctx, &[(100.0, 100.0)]);
        let scheme = RegionScheme::grid(2, &Envelope::from_bounds(0.0, 0.0, 10.0, 10.0));
        let joined = spatialspark_join(&a, &b, &scheme, STPredicate::Intersects, 5);
        assert_eq!(joined.count(), 1);
    }
}
