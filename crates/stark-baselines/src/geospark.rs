//! GeoSpark-style spatial join (You, Zhang & Gruenwald's and Yu, Wu &
//! Sarwat's published strategy, reimplemented on this engine).
//!
//! Both inputs are *replicated* into every partition whose region their
//! MBR overlaps; partitions are joined pairwise-aligned; because a pair
//! of geometries can co-occur in several partitions, the raw result
//! contains duplicates that must be eliminated with an extra shuffle.
//! The paper's §3 notes GeoSpark returned *varying result counts* across
//! repetitions for two partitioners — the `dedup: false` switch
//! reproduces that buggy behaviour.

use crate::scheme::RegionScheme;
use stark::{STObject, STPredicate};
use stark_engine::{Rdd, StoreData};
use stark_index::{Entry, StrTree};
use std::sync::Arc;

/// Configuration for the GeoSpark-style join.
#[derive(Debug, Clone, Copy)]
pub struct GeoSparkConfig {
    /// STR-tree order for the per-partition index.
    pub index_order: usize,
    /// Whether to run the duplicate-elimination shuffle. `false`
    /// reproduces the duplicate-results bug observed in the paper.
    pub dedup: bool,
}

impl Default for GeoSparkConfig {
    fn default() -> Self {
        GeoSparkConfig { index_order: stark_index::DEFAULT_ORDER, dedup: true }
    }
}

/// A joined pair: `(id, object, value)` from each side, where ids are
/// dataset-wide indexes assigned internally.
pub type GeoSparkPair<V, W> = ((u64, STObject, V), (u64, STObject, W));

/// GeoSpark-style join: returns matched record pairs tagged with their
/// dataset-wide ids.
pub fn geospark_join<V: StoreData, W: StoreData>(
    left: &Rdd<(STObject, V)>,
    right: &Rdd<(STObject, W)>,
    scheme: &RegionScheme,
    pred: STPredicate,
    cfg: GeoSparkConfig,
) -> Rdd<GeoSparkPair<V, W>> {
    let scheme = Arc::new(scheme.clone());
    let num = scheme.num_partitions();

    // 1. Tag with global ids (extra count job — an inherent cost of the
    //    replicate-then-dedup design) and replicate to overlapping
    //    regions. For distance predicates the probe side is buffered.
    let buffer = match pred {
        STPredicate::WithinDistance { max_dist, .. } => max_dist,
        _ => 0.0,
    };
    let s1 = scheme.clone();
    let left_rep = left.zip_with_index().flat_map(move |(id, (o, v))| {
        let env = o.envelope().buffered(buffer);
        s1.targets(&env).into_iter().map(|t| (t, (id, o.clone(), v.clone()))).collect::<Vec<_>>()
    });
    let s2 = scheme.clone();
    let right_rep = right.zip_with_index().flat_map(move |(id, (o, w))| {
        let env = o.envelope();
        s2.targets(&env).into_iter().map(|t| (t, (id, o.clone(), w.clone()))).collect::<Vec<_>>()
    });

    let left_placed = left_rep.partition_by(num, |(t, _)| *t).map(|(_, r)| r);
    let right_placed = right_rep.partition_by(num, |(t, _)| *t).map(|(_, r)| r);

    // 2. Partition-aligned local join with a live index on the right.
    let order = cfg.index_order;
    let joined = left_placed.zip_partitions(&right_placed, move |_, ldata, rdata| {
        let entries: Vec<Entry<usize>> =
            rdata.iter().enumerate().map(|(i, (_, o, _))| Entry::new(o.envelope(), i)).collect();
        let tree = StrTree::build(order, entries);
        let mut out = Vec::new();
        for l in &ldata {
            let probe = pred.index_probe(&l.1);
            tree.for_each_candidate(&probe, &mut |e| {
                let r = &rdata[e.item];
                if pred.eval(&l.1, &r.1) {
                    out.push((l.clone(), r.clone()));
                }
            });
        }
        out
    });

    if !cfg.dedup {
        return joined;
    }

    // 3. Duplicate elimination: shuffle on the id pair, keep one copy.
    joined.map(|(l, r)| ((l.0, r.0), (l, r))).reduce_by_key(num, |a, _b| a).map(|(_, pair)| pair)
}

/// Result pairs projected to `(left_id, right_id)`, sorted — convenient
/// for correctness comparisons.
pub fn id_pairs<V: StoreData, W: StoreData>(joined: &Rdd<GeoSparkPair<V, W>>) -> Vec<(u64, u64)> {
    let mut out: Vec<(u64, u64)> =
        joined.collect().into_iter().map(|((a, _, _), (b, _, _))| (a, b)).collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use stark_engine::Context;
    use stark_geo::{Coord, Envelope};

    fn points(ctx: &Context, pts: &[(f64, f64)]) -> Rdd<(STObject, u32)> {
        let data: Vec<(STObject, u32)> =
            pts.iter().enumerate().map(|(i, &(x, y))| (STObject::point(x, y), i as u32)).collect();
        ctx.parallelize(data, 4)
    }

    fn reference(a: &[(f64, f64)], b: &[(f64, f64)], pred: STPredicate) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for (i, &(x1, y1)) in a.iter().enumerate() {
            for (j, &(x2, y2)) in b.iter().enumerate() {
                if pred.eval(&STObject::point(x1, y1), &STObject::point(x2, y2)) {
                    out.push((i as u64, j as u64));
                }
            }
        }
        out.sort_unstable();
        out
    }

    #[test]
    fn join_matches_reference_with_dedup() {
        let ctx = Context::with_parallelism(4);
        let pts: Vec<(f64, f64)> =
            (0..100).map(|i| (((i * 3) % 17) as f64, ((i * 7) % 13) as f64)).collect();
        let rdd = points(&ctx, &pts);
        let scheme = RegionScheme::grid(4, &Envelope::from_bounds(0.0, 0.0, 17.0, 13.0));
        let joined =
            geospark_join(&rdd, &rdd, &scheme, STPredicate::Intersects, GeoSparkConfig::default());
        assert_eq!(id_pairs(&joined), reference(&pts, &pts, STPredicate::Intersects));
    }

    #[test]
    fn voronoi_scheme_join_matches_reference() {
        let ctx = Context::with_parallelism(4);
        let pts: Vec<(f64, f64)> =
            (0..80).map(|i| (((i * 5) % 23) as f64, ((i * 11) % 19) as f64)).collect();
        let rdd = points(&ctx, &pts);
        let sample: Vec<Coord> = pts.iter().map(|&(x, y)| Coord::new(x, y)).collect();
        let scheme = RegionScheme::voronoi(6, &sample, 7);
        let joined =
            geospark_join(&rdd, &rdd, &scheme, STPredicate::Intersects, GeoSparkConfig::default());
        assert_eq!(id_pairs(&joined), reference(&pts, &pts, STPredicate::Intersects));
    }

    #[test]
    fn without_dedup_duplicates_appear_for_spanning_objects() {
        let ctx = Context::with_parallelism(2);
        // a region spanning all four tiles joined with a point inside it
        let regions: Vec<(STObject, u32)> =
            vec![(STObject::from_wkt("POLYGON((2 2, 8 2, 8 8, 2 8, 2 2))").unwrap(), 0)];
        let pts: Vec<(STObject, u32)> = vec![(STObject::point(5.0, 5.0), 0)];
        let left = ctx.parallelize(regions, 1);
        let right = ctx.parallelize(pts, 1);
        let scheme = RegionScheme::grid(2, &Envelope::from_bounds(0.0, 0.0, 10.0, 10.0));

        let buggy = geospark_join(
            &left,
            &right,
            &scheme,
            STPredicate::Intersects,
            GeoSparkConfig { dedup: false, ..Default::default() },
        );
        // the point (5,5) sits on the corner of all 4 tiles, the polygon
        // overlaps all 4 → the pair is reported multiple times
        assert!(buggy.count() > 1, "expected duplicates, got {}", buggy.count());

        let fixed = geospark_join(
            &left,
            &right,
            &scheme,
            STPredicate::Intersects,
            GeoSparkConfig::default(),
        );
        assert_eq!(fixed.count(), 1);
    }

    #[test]
    fn distance_join_buffers_probe_side() {
        let ctx = Context::with_parallelism(2);
        // points in different tiles but within distance 2
        let a = points(&ctx, &[(4.9, 5.0)]);
        let b = points(&ctx, &[(5.1, 5.0)]);
        let scheme = RegionScheme::grid(2, &Envelope::from_bounds(0.0, 0.0, 10.0, 10.0));
        let joined = geospark_join(
            &a,
            &b,
            &scheme,
            STPredicate::within_distance(2.0),
            GeoSparkConfig::default(),
        );
        assert_eq!(id_pairs(&joined), vec![(0, 0)]);
    }
}
