//! Region schemes for replication-based partitioning.
//!
//! GeoSpark- and SpatialSpark-style joins assign every geometry to *all*
//! partitions whose region its MBR overlaps (the first of the two
//! options in paper §2.1 — the one STARK rejects in favour of centroid
//! assignment + extents). A scheme is a list of region envelopes plus an
//! implicit overflow partition for geometries overlapping none.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stark_geo::{Coord, Envelope};

/// A set of (possibly overlapping) region envelopes.
#[derive(Debug, Clone)]
pub struct RegionScheme {
    pub name: &'static str,
    regions: Vec<Envelope>,
    /// Set for regular grids: `(dims, space)` enables O(1) point
    /// location instead of a scan over the regions.
    grid: Option<(usize, Envelope)>,
}

impl RegionScheme {
    /// Equal-sized grid tiles over `space` — SpatialSpark's "Tile"
    /// partitioner and GeoSpark's equal grid.
    pub fn grid(dims: usize, space: &Envelope) -> Self {
        let dims = dims.max(1);
        assert!(!space.is_empty(), "grid space must be non-empty");
        let w = (space.width() / dims as f64).max(f64::MIN_POSITIVE);
        let h = (space.height() / dims as f64).max(f64::MIN_POSITIVE);
        let mut regions = Vec::with_capacity(dims * dims);
        for row in 0..dims {
            for col in 0..dims {
                let x = space.min_x() + col as f64 * w;
                let y = space.min_y() + row as f64 * h;
                regions.push(Envelope::from_bounds(x, y, x + w, y + h));
            }
        }
        RegionScheme { name: "tile", regions, grid: Some((dims, *space)) }
    }

    /// Voronoi-style regions — GeoSpark's Voronoi partitioner: `k`
    /// centres refined with a few Lloyd iterations over the sample, each
    /// region approximated by the envelope of its assigned sample points
    /// (the approximation GeoSpark itself makes).
    pub fn voronoi(k: usize, sample: &[Coord], seed: u64) -> Self {
        let k = k.max(1).min(sample.len().max(1));
        let mut rng = StdRng::seed_from_u64(seed);
        let mut centers: Vec<Coord> = if sample.is_empty() {
            vec![Coord::new(0.0, 0.0)]
        } else {
            (0..k).map(|_| sample[rng.gen_range(0..sample.len())]).collect()
        };

        let mut assignment = vec![0usize; sample.len()];
        for _ in 0..5 {
            // assign
            for (i, p) in sample.iter().enumerate() {
                assignment[i] = nearest(&centers, p);
            }
            // recentre
            let mut sums = vec![(0.0f64, 0.0f64, 0usize); centers.len()];
            for (i, p) in sample.iter().enumerate() {
                let s = &mut sums[assignment[i]];
                s.0 += p.x;
                s.1 += p.y;
                s.2 += 1;
            }
            for (c, s) in centers.iter_mut().zip(&sums) {
                if s.2 > 0 {
                    *c = Coord::new(s.0 / s.2 as f64, s.1 / s.2 as f64);
                }
            }
        }

        let mut regions = vec![Envelope::empty(); centers.len()];
        for (i, p) in sample.iter().enumerate() {
            regions[assignment[i]].expand_to_include(p);
        }
        // empty regions collapse to their centre point
        for (r, c) in regions.iter_mut().zip(&centers) {
            if r.is_empty() {
                *r = Envelope::from_point(*c);
            }
        }
        RegionScheme { name: "voronoi", regions, grid: None }
    }

    /// Region count *excluding* the overflow partition.
    pub fn num_regions(&self) -> usize {
        self.regions.len()
    }

    /// Total partition count (regions + overflow).
    pub fn num_partitions(&self) -> usize {
        self.regions.len() + 1
    }

    /// Index of the overflow partition.
    pub fn overflow(&self) -> usize {
        self.regions.len()
    }

    /// Bounding box of all regions (the scheme's coverage).
    pub fn coverage(&self) -> Envelope {
        self.regions.iter().fold(Envelope::empty(), |acc, r| acc.union(r))
    }

    /// All partitions `env` must be replicated to: every overlapping
    /// region, plus the overflow partition when the envelope *escapes*
    /// the scheme's coverage (sticks out of the covered bounding box).
    ///
    /// The escape rule makes the reference-point duplicate-avoidance of
    /// the tile join airtight: whenever a matched pair's reference point
    /// falls outside every region, both envelopes provably escape, so
    /// both sides are present in the overflow partition that owns the
    /// pair.
    pub fn targets(&self, env: &Envelope) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .regions
            .iter()
            .enumerate()
            .filter(|(_, r)| r.intersects(env))
            .map(|(i, _)| i)
            .collect();
        if out.is_empty() || !self.coverage().contains_envelope(env) {
            out.push(self.overflow());
        }
        out
    }

    /// The region envelopes.
    pub fn regions(&self) -> &[Envelope] {
        &self.regions
    }

    /// Index of a region containing `c`, or the overflow partition when
    /// none does. O(1) for grid schemes, O(regions) otherwise.
    pub fn locate(&self, c: &stark_geo::Coord) -> usize {
        if let Some((dims, space)) = &self.grid {
            if !space.contains_coord(c) {
                return self.overflow();
            }
            let w = (space.width() / *dims as f64).max(f64::MIN_POSITIVE);
            let h = (space.height() / *dims as f64).max(f64::MIN_POSITIVE);
            let col =
                (((c.x - space.min_x()) / w).floor() as i64).clamp(0, *dims as i64 - 1) as usize;
            let row =
                (((c.y - space.min_y()) / h).floor() as i64).clamp(0, *dims as i64 - 1) as usize;
            return row * dims + col;
        }
        self.regions.iter().position(|r| r.contains_coord(c)).unwrap_or_else(|| self.overflow())
    }
}

fn nearest(centers: &[Coord], p: &Coord) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (i, c) in centers.iter().enumerate() {
        let d = c.distance_sq(p);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_tiles_cover_space() {
        let space = Envelope::from_bounds(0.0, 0.0, 10.0, 10.0);
        let s = RegionScheme::grid(4, &space);
        assert_eq!(s.num_regions(), 16);
        assert_eq!(s.num_partitions(), 17);
        let area: f64 = s.regions().iter().map(Envelope::area).sum();
        assert!((area - 100.0).abs() < 1e-9);
    }

    #[test]
    fn point_in_one_tile_interior() {
        let space = Envelope::from_bounds(0.0, 0.0, 10.0, 10.0);
        let s = RegionScheme::grid(2, &space);
        let t = s.targets(&Envelope::from_point(Coord::new(2.0, 2.0)));
        assert_eq!(t, vec![0]);
    }

    #[test]
    fn spanning_envelope_replicates() {
        let space = Envelope::from_bounds(0.0, 0.0, 10.0, 10.0);
        let s = RegionScheme::grid(2, &space);
        let t = s.targets(&Envelope::from_bounds(4.0, 4.0, 6.0, 6.0));
        assert_eq!(t.len(), 4, "envelope spans all four tiles: {t:?}");
    }

    #[test]
    fn outside_goes_to_overflow() {
        let space = Envelope::from_bounds(0.0, 0.0, 10.0, 10.0);
        let s = RegionScheme::grid(2, &space);
        let t = s.targets(&Envelope::from_point(Coord::new(100.0, 100.0)));
        assert_eq!(t, vec![s.overflow()]);
    }

    #[test]
    fn voronoi_regions_cover_sample() {
        let sample: Vec<Coord> =
            (0..200).map(|i| Coord::new((i % 20) as f64, (i / 20) as f64)).collect();
        let s = RegionScheme::voronoi(5, &sample, 42);
        assert_eq!(s.name, "voronoi");
        assert!(s.num_regions() <= 5);
        for p in &sample {
            assert!(!s.targets(&Envelope::from_point(*p)).is_empty(), "point {p} not covered");
            // points from the sample never land in overflow
            assert_ne!(s.targets(&Envelope::from_point(*p)), vec![s.overflow()]);
        }
    }

    #[test]
    fn voronoi_with_empty_sample() {
        let s = RegionScheme::voronoi(3, &[], 1);
        assert!(s.num_regions() >= 1);
        // everything overflows except the degenerate centre point
        let t = s.targets(&Envelope::from_point(Coord::new(5.0, 5.0)));
        assert!(!t.is_empty());
    }

    #[test]
    fn voronoi_is_deterministic() {
        let sample: Vec<Coord> =
            (0..50).map(|i| Coord::new(i as f64, (i * 3 % 7) as f64)).collect();
        let a = RegionScheme::voronoi(4, &sample, 9);
        let b = RegionScheme::voronoi(4, &sample, 9);
        assert_eq!(a.regions(), b.regions());
    }
}
