//! Differential property tests: every baseline join strategy must agree
//! with the exhaustive reference on random mixed workloads.

use proptest::prelude::*;
use stark::{STObject, STPredicate};
use stark_baselines::{
    broadcast_join, geospark_join, id_pairs, spatialspark_join, GeoSparkConfig, RegionScheme,
};
use stark_engine::{Context, Rdd};
use stark_geo::{Envelope, Geometry};

/// Random mixed geometries: points and small rectangles, some outside
/// the scheme's space to exercise the overflow/escape path.
fn geoms_strategy(max: usize) -> impl Strategy<Value = Vec<Geometry>> {
    proptest::collection::vec(
        prop_oneof![
            ((-20.0f64..120.0), (-20.0f64..120.0)).prop_map(|(x, y)| Geometry::point(x, y)),
            ((-20.0f64..110.0), (-20.0f64..110.0), (0.5f64..15.0), (0.5f64..15.0))
                .prop_map(|(x, y, w, h)| Geometry::rect(x, y, x + w, y + h)),
        ],
        1..max,
    )
}

fn to_rdd(ctx: &Context, gs: &[Geometry]) -> Rdd<(STObject, u32)> {
    let data: Vec<(STObject, u32)> =
        gs.iter().enumerate().map(|(i, g)| (STObject::new(g.clone()), i as u32)).collect();
    ctx.parallelize(data, 4)
}

fn reference(a: &[Geometry], b: &[Geometry], pred: STPredicate) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    for (i, ga) in a.iter().enumerate() {
        for (j, gb) in b.iter().enumerate() {
            if pred.eval(&STObject::new(ga.clone()), &STObject::new(gb.clone())) {
                out.push((i as u64, j as u64));
            }
        }
    }
    out.sort_unstable();
    out
}

fn ids(joined: Vec<((STObject, u32), (STObject, u32))>) -> Vec<(u64, u64)> {
    let mut out: Vec<(u64, u64)> =
        joined.into_iter().map(|((_, a), (_, b))| (a as u64, b as u64)).collect();
    out.sort_unstable();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn geospark_matches_reference(
        left in geoms_strategy(40),
        right in geoms_strategy(40),
        dims in 1usize..5,
    ) {
        let ctx = Context::with_parallelism(3);
        let scheme = RegionScheme::grid(dims, &Envelope::from_bounds(0.0, 0.0, 100.0, 100.0));
        let joined = geospark_join(
            &to_rdd(&ctx, &left),
            &to_rdd(&ctx, &right),
            &scheme,
            STPredicate::Intersects,
            GeoSparkConfig::default(),
        );
        prop_assert_eq!(id_pairs(&joined), reference(&left, &right, STPredicate::Intersects));
    }

    #[test]
    fn spatialspark_matches_reference(
        left in geoms_strategy(40),
        right in geoms_strategy(40),
        dims in 1usize..5,
    ) {
        let ctx = Context::with_parallelism(3);
        let scheme = RegionScheme::grid(dims, &Envelope::from_bounds(0.0, 0.0, 100.0, 100.0));
        let joined = spatialspark_join(
            &to_rdd(&ctx, &left),
            &to_rdd(&ctx, &right),
            &scheme,
            STPredicate::Intersects,
            4,
        );
        prop_assert_eq!(
            ids(joined.collect()),
            reference(&left, &right, STPredicate::Intersects)
        );
    }

    #[test]
    fn spatialspark_distance_join_matches_reference(
        left in geoms_strategy(30),
        right in geoms_strategy(30),
        d in 0.5f64..20.0,
    ) {
        let ctx = Context::with_parallelism(3);
        let scheme = RegionScheme::grid(3, &Envelope::from_bounds(0.0, 0.0, 100.0, 100.0));
        let pred = STPredicate::within_distance(d);
        let joined =
            spatialspark_join(&to_rdd(&ctx, &left), &to_rdd(&ctx, &right), &scheme, pred, 4);
        prop_assert_eq!(ids(joined.collect()), reference(&left, &right, pred));
    }

    #[test]
    fn broadcast_matches_reference(
        left in geoms_strategy(30),
        right in geoms_strategy(30),
    ) {
        let ctx = Context::with_parallelism(3);
        let joined =
            broadcast_join(&to_rdd(&ctx, &left), &to_rdd(&ctx, &right), STPredicate::Intersects);
        prop_assert_eq!(
            ids(joined.collect()),
            reference(&left, &right, STPredicate::Intersects)
        );
    }

    #[test]
    fn voronoi_geospark_matches_reference(
        pts in proptest::collection::vec(((0.0f64..100.0), (0.0f64..100.0)), 2..60),
        k in 1usize..8,
        seed in any::<u64>(),
    ) {
        let ctx = Context::with_parallelism(3);
        let geoms: Vec<Geometry> = pts.iter().map(|&(x, y)| Geometry::point(x, y)).collect();
        let sample: Vec<stark_geo::Coord> =
            pts.iter().map(|&(x, y)| stark_geo::Coord::new(x, y)).collect();
        let scheme = RegionScheme::voronoi(k, &sample, seed);
        let joined = geospark_join(
            &to_rdd(&ctx, &geoms),
            &to_rdd(&ctx, &geoms),
            &scheme,
            STPredicate::Intersects,
            GeoSparkConfig::default(),
        );
        prop_assert_eq!(id_pairs(&joined), reference(&geoms, &geoms, STPredicate::Intersects));
    }
}
