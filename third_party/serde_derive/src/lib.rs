//! Hand-rolled `#[derive(Serialize, Deserialize)]` for the vendored serde
//! shim. No `syn`/`quote` — the container has no crates.io access — so the
//! input item is parsed directly from the token stream and the generated
//! impls are assembled as source text.
//!
//! Supported shapes (everything the workspace derives on):
//! structs with named fields, tuple structs, and enums with unit, tuple,
//! and struct variants; one optional generic type parameter list (bounds
//! are added per parameter); the `#[serde(default)]` field attribute.
//!
//! Encoding follows serde_json conventions: named struct → object,
//! newtype struct → inner value, tuple struct → array, unit variant →
//! string, data-carrying variant → single-key object.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl parses")
}

// --------------------------------------------------------------------------
// item model + parser
// --------------------------------------------------------------------------

struct Field {
    name: String, // field name, or tuple index as decimal text
    default: bool,
}

enum Shape {
    NamedStruct(Vec<Field>),
    /// Tuple struct with this many fields.
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Item {
    name: String,
    generics: Vec<String>,
    shape: Shape,
}

/// Consumes leading attributes, returning whether any was `#[serde(default)]`.
fn skip_attrs(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) -> bool {
    let mut has_default = false;
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.next() {
                    let text = g.stream().to_string().replace(' ', "");
                    if text.contains("serde(default)") {
                        has_default = true;
                    }
                } else {
                    panic!("expected attribute body after '#'");
                }
            }
            _ => return has_default,
        }
    }
}

fn skip_visibility(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    if matches!(tokens.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        tokens.next();
        // `pub(crate)` etc.
        if matches!(
            tokens.peek(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            tokens.next();
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    skip_attrs(&mut tokens);
    skip_visibility(&mut tokens);

    let kw = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected struct/enum keyword, got {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected item name, got {other:?}"),
    };

    // generic parameter list: only plain type parameters are supported
    let mut generics = Vec::new();
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        tokens.next();
        let mut depth = 1usize;
        while depth > 0 {
            match tokens.next().expect("unterminated generics") {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Ident(i) if depth == 1 => generics.push(i.to_string()),
                _ => {}
            }
        }
    }

    let shape = match kw.as_str() {
        "struct" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            other => panic!("unsupported struct body: {other:?}"),
        },
        "enum" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("unsupported enum body: {other:?}"),
        },
        other => panic!("cannot derive for `{other}` items"),
    };

    Item { name, generics, shape }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        if tokens.peek().is_none() {
            return fields;
        }
        let default = skip_attrs(&mut tokens);
        if tokens.peek().is_none() {
            return fields;
        }
        skip_visibility(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("expected field name, got {other:?}"),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected ':' after field name, got {other:?}"),
        }
        // skip the type: consume until a top-level comma. Generic angle
        // brackets contain no top-level commas once depth > 0.
        let mut depth = 0isize;
        loop {
            match tokens.peek() {
                None => break,
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                    depth += 1;
                    tokens.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                    depth -= 1;
                    tokens.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 0 => {
                    tokens.next();
                    break;
                }
                Some(_) => {
                    tokens.next();
                }
            }
        }
        fields.push(Field { name, default });
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut depth = 0isize;
    let mut saw_token = false;
    for t in stream {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                count += 1;
                saw_token = false;
                continue;
            }
            _ => {}
        }
        saw_token = true;
    }
    if saw_token {
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        if tokens.peek().is_none() {
            return variants;
        }
        skip_attrs(&mut tokens);
        if tokens.peek().is_none() {
            return variants;
        }
        let name = match tokens.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("expected variant name, got {other:?}"),
        };
        let kind = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                tokens.next();
                VariantKind::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                tokens.next();
                VariantKind::Named(fields)
            }
            _ => VariantKind::Unit,
        };
        // optional discriminant `= expr` is not supported; consume comma
        if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            tokens.next();
        }
        variants.push(Variant { name, kind });
    }
}

// --------------------------------------------------------------------------
// code generation
// --------------------------------------------------------------------------

fn impl_header(item: &Item, trait_name: &str) -> (String, String) {
    if item.generics.is_empty() {
        (String::new(), item.name.clone())
    } else {
        let bounded: Vec<String> = item
            .generics
            .iter()
            .map(|g| format!("{g}: ::serde::{trait_name}"))
            .collect();
        let plain = item.generics.join(", ");
        (format!("<{}>", bounded.join(", ")), format!("{}<{}>", item.name, plain))
    }
}

fn gen_serialize(item: &Item) -> String {
    let (generics, ty) = impl_header(item, "Serialize");
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let mut s = String::from(
                "let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\n",
            );
            for f in fields {
                s.push_str(&format!(
                    "fields.push((\"{0}\".to_string(), ::serde::Serialize::to_value(&self.{0})));\n",
                    f.name
                ));
            }
            s.push_str("::serde::Value::Object(fields)");
            s
        }
        Shape::TupleStruct(1) => {
            "::serde::Serialize::to_value(&self.0)".to_string()
        }
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        arms.push_str(&format!(
                            "Self::{vname} => ::serde::Value::Str(\"{vname}\".to_string()),\n"
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "Self::{vname}({}) => ::serde::Value::Object(vec![(\"{vname}\".to_string(), {inner})]),\n",
                            binds.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        let mut inner = String::from(
                            "{ let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\n",
                        );
                        for f in fields {
                            inner.push_str(&format!(
                                "fields.push((\"{0}\".to_string(), ::serde::Serialize::to_value({0})));\n",
                                f.name
                            ));
                        }
                        inner.push_str("::serde::Value::Object(fields) }");
                        arms.push_str(&format!(
                            "Self::{vname} {{ {} }} => ::serde::Value::Object(vec![(\"{vname}\".to_string(), {inner})]),\n",
                            binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl{generics} ::serde::Serialize for {ty} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}"
    )
}

fn field_extraction(fields: &[Field], source: &str, ctx: &str) -> String {
    let mut s = String::new();
    for f in fields {
        let missing = if f.default {
            "::core::default::Default::default()".to_string()
        } else {
            format!(
                "return Err(::serde::Error::custom(\"missing field `{}` in {}\"))",
                f.name, ctx
            )
        };
        s.push_str(&format!(
            "{0}: match {source}.get_field(\"{0}\") {{\n\
             Some(fv) => ::serde::Deserialize::from_value(fv)?,\n\
             None => {missing},\n}},\n",
            f.name
        ));
    }
    s
}

fn gen_deserialize(item: &Item) -> String {
    let (generics, ty) = impl_header(item, "Deserialize");
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            format!(
                "if !matches!(v, ::serde::Value::Object(_)) {{\n\
                 return Err(::serde::Error::custom(\"expected object for {name}\"));\n}}\n\
                 Ok({name} {{\n{}\n}})",
                field_extraction(fields, "v", name)
            )
        }
        Shape::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "match v {{\n\
                 ::serde::Value::Array(items) if items.len() == {n} => \
                 Ok({name}({})),\n\
                 _ => Err(::serde::Error::custom(\"expected {n}-element array for {name}\")),\n}}",
                items.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!(
                            "\"{vname}\" => return Ok(Self::{vname}),\n"
                        ));
                    }
                    VariantKind::Tuple(1) => {
                        data_arms.push_str(&format!(
                            "\"{vname}\" => return Ok(Self::{vname}(::serde::Deserialize::from_value(inner)?)),\n"
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vname}\" => return match inner {{\n\
                             ::serde::Value::Array(items) if items.len() == {n} => \
                             Ok(Self::{vname}({})),\n\
                             _ => Err(::serde::Error::custom(\"expected {n}-element array for {name}::{vname}\")),\n}},\n",
                            items.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        data_arms.push_str(&format!(
                            "\"{vname}\" => return Ok(Self::{vname} {{\n{}\n}}),\n",
                            field_extraction(fields, "inner", &format!("{name}::{vname}"))
                        ));
                    }
                }
            }
            format!(
                "match v {{\n\
                 ::serde::Value::Str(s) => {{\n\
                 match s.as_str() {{\n{unit_arms}_ => {{}}\n}}\n\
                 Err(::serde::Error::custom(format!(\"unknown {name} variant {{s:?}}\")))\n\
                 }}\n\
                 ::serde::Value::Object(fields) if fields.len() == 1 => {{\n\
                 let (tag, inner) = &fields[0];\n\
                 #[allow(unused_variables)]\n\
                 match tag.as_str() {{\n{data_arms}_ => {{}}\n}}\n\
                 Err(::serde::Error::custom(format!(\"unknown {name} variant {{tag:?}}\")))\n\
                 }}\n\
                 other => Err(::serde::Error::custom(format!(\"expected {name} value, got {{}}\", other.kind()))),\n\
                 }}"
            )
        }
    };
    format!(
        "impl{generics} ::serde::Deserialize for {ty} {{\n\
         fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}"
    )
}
