//! Vendored minimal stand-in for the `serde_json` crate, backed by the
//! vendored serde shim's [`serde::Value`] tree and its JSON codec.

pub use serde::Value;

/// JSON (de)serialisation error.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_json())
}

pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    // pretty-printing is cosmetic; the compact form is valid JSON
    to_string(value)
}

pub fn to_vec<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

pub fn from_str<T: serde::de::DeserializeOwned>(text: &str) -> Result<T, Error> {
    let v = Value::parse_json(text).map_err(Error::new)?;
    T::from_value(&v).map_err(Error::from)
}

pub fn from_slice<T: serde::de::DeserializeOwned>(bytes: &[u8]) -> Result<T, Error> {
    let text = std::str::from_utf8(bytes).map_err(|e| Error::new(e.to_string()))?;
    from_str(text)
}

#[cfg(test)]
mod tests {
    #[test]
    fn roundtrip_via_text() {
        let v: Vec<(u32, String)> = vec![(1, "a".into()), (2, "b".into())];
        let text = super::to_string(&v).unwrap();
        let back: Vec<(u32, String)> = super::from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn bad_input_is_error() {
        assert!(super::from_str::<u32>("not json").is_err());
        assert!(super::from_str::<u32>("-1").is_err());
    }
}
