//! Strategy trait and combinators.

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// The RNG threaded through generation (deterministic per test).
pub type TestRng = StdRng;

/// A generator of values of type `Self::Value`.
///
/// No shrinking: `generate` produces one value per call.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Retries generation until `f` accepts a value (upstream proptest
    /// rejects-and-retries too; `reason` is used in the give-up message).
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, reason, f }
    }

    /// Combined map+filter: retries until `f` returns `Some`.
    fn prop_filter_map<U, F>(self, reason: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<U>,
    {
        FilterMap { inner: self, reason, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy { gen: Rc::new(move |rng| self.generate(rng)) }
    }
}

/// Type-erased strategy (what `prop_oneof!` arms are converted to).
pub struct BoxedStrategy<T> {
    gen: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy { gen: Rc::clone(&self.gen) }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

const MAX_REJECTS: usize = 1000;

pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..MAX_REJECTS {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter({:?}) rejected {MAX_REJECTS} values in a row", self.reason);
    }
}

pub struct FilterMap<S, F> {
    inner: S,
    reason: &'static str,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        for _ in 0..MAX_REJECTS {
            if let Some(v) = (self.f)(self.inner.generate(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map({:?}) rejected {MAX_REJECTS} values in a row", self.reason);
    }
}

/// Uniform choice between type-erased alternatives (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

// -- ranges ---------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

// -- tuples ---------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+),)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F),
}

// -- collections ----------------------------------------------------------

/// See [`crate::collection::vec`].
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = rng.gen_range(self.len.clone());
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

// -- regex-subset string strategies ---------------------------------------

/// `&str` literals act as regex strategies, supporting the subset the
/// workspace uses: `".*"` (arbitrary printable-ish string) and
/// `"[class]{m,n}"` with literal chars and `a-z` ranges in the class.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_matching(self, rng)
    }
}

fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    if pattern == ".*" {
        // arbitrary string: lean on printable ASCII plus some multibyte
        // chars to exercise UTF-8 handling
        let n = rng.gen_range(0..64usize);
        return (0..n)
            .map(|_| match rng.gen_range(0..10u32) {
                0 => '\n',
                1 => 'λ',
                2 => '€',
                _ => char::from_u32(rng.gen_range(0x20..0x7fu32)).unwrap(),
            })
            .collect();
    }
    let (alphabet, reps) =
        parse_class_pattern(pattern).unwrap_or_else(|| {
            panic!("unsupported regex pattern for string strategy: {pattern:?}")
        });
    let n = rng.gen_range(reps.0..=reps.1);
    (0..n).map(|_| alphabet[rng.gen_range(0..alphabet.len())]).collect()
}

/// Parses `[chars]{m,n}` into (alphabet, (m, n)).
fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, (usize, usize))> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < class.len() {
        // `a-z` range (dash not first/last)
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i], class[i + 2]);
            if lo <= hi {
                for c in lo..=hi {
                    alphabet.push(c);
                }
                i += 3;
                continue;
            }
        }
        alphabet.push(class[i]);
        i += 1;
    }
    if alphabet.is_empty() {
        return None;
    }
    let braces = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
    let (m, n) = braces.split_once(',')?;
    Some((alphabet, (m.trim().parse().ok()?, n.trim().parse().ok()?)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn class_pattern_parses() {
        let (alphabet, (m, n)) = parse_class_pattern("[a-c9_]{0,20}").unwrap();
        assert_eq!(alphabet, vec!['a', 'b', 'c', '9', '_']);
        assert_eq!((m, n), (0, 20));
    }

    #[test]
    fn string_strategy_respects_class() {
        let mut rng = TestRng::seed_from_u64(3);
        for _ in 0..100 {
            let s = "[ab]{1,5}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 5);
            assert!(s.chars().all(|c| c == 'a' || c == 'b'), "{s:?}");
        }
    }

    #[test]
    fn filter_map_retries() {
        let mut rng = TestRng::seed_from_u64(4);
        let s = (0u32..100).prop_filter_map("even", |v| (v % 2 == 0).then_some(v));
        for _ in 0..50 {
            assert_eq!(s.generate(&mut rng) % 2, 0);
        }
    }

    #[test]
    fn union_draws_all_arms() {
        let mut rng = TestRng::seed_from_u64(5);
        let u = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[u.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }
}
