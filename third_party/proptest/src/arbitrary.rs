//! `any::<T>()` — full-range strategies for primitive types.

use crate::strategy::{Strategy, TestRng};
use rand::RngCore;
use std::marker::PhantomData;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy over the full range of `T` (see [`any`]).
pub struct AnyStrategy<T>(PhantomData<T>);

/// Full-range strategy for `T`, as in `any::<u64>()`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // finite full-range-ish floats; non-finite values would poison
        // most geometric comparisons
        let mantissa = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let exp = (rng.next_u64() % 61) as i32 - 30;
        (mantissa - 0.5) * 2f64.powi(exp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn any_covers_negative_and_positive() {
        let mut rng = TestRng::seed_from_u64(9);
        let s = any::<i32>();
        let vals: Vec<i32> = (0..200).map(|_| s.generate(&mut rng)).collect();
        assert!(vals.iter().any(|&v| v < 0));
        assert!(vals.iter().any(|&v| v > 0));
    }
}
