//! Vendored minimal stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use: the
//! [`strategy::Strategy`] trait with `prop_map` / `prop_filter` /
//! `prop_filter_map`, `prop_oneof!`, `Just`, `any::<T>()`,
//! `collection::vec`, range and tuple strategies, a tiny regex-subset
//! string strategy (`".*"` and `"[class]{m,n}"`), and the `proptest!` test
//! macro with `#![proptest_config(ProptestConfig::with_cases(n))]`.
//!
//! Unlike upstream proptest there is no shrinking: failures report the
//! case number and seed so a run can be reproduced (generation is fully
//! deterministic per test name).

pub mod strategy;

pub mod arbitrary;

pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};
    use std::ops::Range;

    /// `Vec` strategy with a length drawn from `len` and elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

pub mod test_runner {
    /// Runner configuration — only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Constructs the deterministic RNG for a test, from [`seed_for`].
pub fn rng_for(seed: u64) -> strategy::TestRng {
    <strategy::TestRng as rand::SeedableRng>::seed_from_u64(seed)
}

/// Stable 64-bit FNV-1a hash of the test name, for per-test seeds.
pub fn seed_for(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr)
     $($(#[$meta:meta])*
       fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
     )*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            use $crate::strategy::Strategy as _;
            let __config = $config;
            let __seed = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
            let mut __rng = $crate::rng_for(__seed);
            for __case in 0..__config.cases {
                let __result = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| {
                        let ($($pat,)+) = ($($strat.generate(&mut __rng),)+);
                        $body
                    }),
                );
                if let Err(payload) = __result {
                    eprintln!(
                        "proptest case {}/{} failed for {} (seed {:#x})",
                        __case + 1,
                        __config.cases,
                        stringify!($name),
                        __seed,
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}
