//! Vendored minimal stand-in for the `serde` crate.
//!
//! The build container has no crates.io access, so this shim provides the
//! exact subset of serde's API the workspace uses: `Serialize` /
//! `Deserialize` traits (routed through a self-describing [`value::Value`]
//! tree rather than serde's visitor machinery), the `derive` feature, and
//! `de::DeserializeOwned`. The only data format in the workspace is JSON
//! (via the sibling `serde_json` shim), so a value-tree intermediate is a
//! faithful substitute.

pub mod value;

pub use value::Value;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// (De)serialisation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        Error { msg: msg.to_string() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// A type that can be converted into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

pub mod ser {
    pub use crate::Serialize;
}

pub mod de {
    pub use crate::Deserialize;

    /// Owned deserialisation marker, as in real serde.
    pub trait DeserializeOwned: Deserialize {}
    impl<T: Deserialize> DeserializeOwned for T {}
}

fn type_err<T>(expected: &str, got: &Value) -> Result<T, Error> {
    Err(Error::custom(format!("expected {expected}, got {}", got.kind())))
}

// --------------------------------------------------------------------------
// primitive impls
// --------------------------------------------------------------------------

// A Value is its own serialised form — lets derived structs carry
// free-form Value fields (e.g. plan-fragment op arguments).
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => type_err("bool", other),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n: i64 = match v {
                    Value::Int(n) => *n,
                    Value::UInt(n) if *n <= i64::MAX as u64 => *n as i64,
                    other => return type_err("integer", other),
                };
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n: u64 = match v {
                    Value::UInt(n) => *n,
                    Value::Int(n) if *n >= 0 => *n as u64,
                    other => return type_err("unsigned integer", other),
                };
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Float(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(n) => Ok(*n as $t),
                    Value::UInt(n) => Ok(*n as $t),
                    other => type_err("number", other),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => type_err("string", other),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => type_err("single-char string", other),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => type_err("array", other),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(std::sync::Arc::new)
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+),)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) => {
                        let expect = [$(stringify!($n)),+].len();
                        if items.len() != expect {
                            return Err(Error::custom(format!(
                                "expected {expect}-tuple, got array of {}",
                                items.len()
                            )));
                        }
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    other => type_err("tuple array", other),
                }
            }
        }
    )*};
}
impl_tuple! {
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(i64::from_value(&42i64.to_value()).unwrap(), 42);
        assert_eq!(u32::from_value(&7u32.to_value()).unwrap(), 7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(String::from_value(&"x".to_value()).unwrap(), "x");
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
        let v: Vec<(u32, String)> = vec![(1, "a".into())];
        assert_eq!(Vec::<(u32, String)>::from_value(&v.to_value()).unwrap(), v);
    }

    #[test]
    fn type_mismatch_errors() {
        assert!(bool::from_value(&Value::Int(1)).is_err());
        assert!(u8::from_value(&Value::Int(-1)).is_err());
        assert!(u8::from_value(&Value::Int(300)).is_err());
    }
}
