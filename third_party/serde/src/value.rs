//! Self-describing value tree — the intermediate representation between
//! Rust types and the JSON text format.

/// A dynamically typed (de)serialisation value.
#[derive(Debug, Clone)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    /// Field order is preserved (insertion order), like a JSON object.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Human-readable kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Looks up a field of an object value.
    pub fn get_field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => {
                fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
            }
            _ => None,
        }
    }
}

/// JSON has one integer domain, so `Int(3)` and `UInt(3)` compare equal
/// — the parser canonicalises non-negative integers to `UInt`, and a
/// value built with `Int` must survive a text round-trip unchanged.
impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::UInt(a), Value::UInt(b)) => a == b,
            (Value::Int(a), Value::UInt(b)) | (Value::UInt(b), Value::Int(a)) => {
                *a >= 0 && *a as u64 == *b
            }
            (Value::Float(a), Value::Float(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Array(a), Value::Array(b)) => a == b,
            (Value::Object(a), Value::Object(b)) => a == b,
            _ => false,
        }
    }
}

// --------------------------------------------------------------------------
// JSON text encoding
// --------------------------------------------------------------------------

impl Value {
    /// Renders as JSON text. Non-finite floats are written as the bare
    /// tokens `Infinity` / `-Infinity` / `NaN` (accepted by the parser;
    /// the workspace's envelopes use ±∞ for the empty envelope).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    fn write_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(n) => out.push_str(&n.to_string()),
            Value::UInt(n) => out.push_str(&n.to_string()),
            Value::Float(f) => {
                if f.is_nan() {
                    out.push_str("NaN");
                } else if f.is_infinite() {
                    out.push_str(if *f > 0.0 { "Infinity" } else { "-Infinity" });
                } else {
                    // Rust's shortest round-trippable float formatting
                    out.push_str(&f.to_string());
                }
            }
            Value::Str(s) => write_json_string(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_json(out);
                }
                out.push(']');
            }
            Value::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(k, out);
                    out.push(':');
                    v.write_json(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses JSON text into a value tree.
    pub fn parse_json(text: &str) -> Result<Value, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.parse_value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            None => Err("unexpected end of input".to_string()),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'N') if self.eat_keyword("NaN") => Ok(Value::Float(f64::NAN)),
            Some(b'I') if self.eat_keyword("Infinity") => Ok(Value::Float(f64::INFINITY)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(c) => Err(format!("unexpected {:?} at byte {}", c as char, self.pos)),
        }
    }

    fn parse_array(&mut self) -> Result<Value, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err("truncated \\u escape".to_string());
                            }
                            let hex =
                                std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                    .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| "bad \\u code point".to_string())?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // copy one UTF-8 char
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
            if self.eat_keyword("Infinity") {
                return Ok(Value::Float(f64::NEG_INFINITY));
            }
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid utf-8 in number".to_string())?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(if n >= 0 { Value::UInt(n as u64) } else { Value::Int(n) });
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip() {
        let v = Value::Object(vec![
            ("a".to_string(), Value::Int(-3)),
            ("b".to_string(), Value::Array(vec![Value::Float(1.5), Value::Null])),
            ("s".to_string(), Value::Str("he\"llo\n".to_string())),
        ]);
        let text = v.to_json();
        let back = Value::parse_json(&text).unwrap();
        // -3 parses back as Int, 1.5 as Float
        assert_eq!(back.get_field("a"), Some(&Value::Int(-3)));
        assert_eq!(back.get_field("s"), Some(&Value::Str("he\"llo\n".to_string())));
    }

    #[test]
    fn non_finite_floats_roundtrip() {
        for f in [f64::INFINITY, f64::NEG_INFINITY] {
            let text = Value::Float(f).to_json();
            match Value::parse_json(&text).unwrap() {
                Value::Float(g) => assert_eq!(f, g),
                other => panic!("expected float, got {other:?}"),
            }
        }
        let nan = Value::parse_json("NaN").unwrap();
        assert!(matches!(nan, Value::Float(f) if f.is_nan()));
    }

    #[test]
    fn parse_errors() {
        assert!(Value::parse_json("").is_err());
        assert!(Value::parse_json("{").is_err());
        assert!(Value::parse_json("[1,]").is_err());
        assert!(Value::parse_json("1 2").is_err());
    }
}
