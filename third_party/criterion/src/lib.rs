//! Vendored minimal stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group` / `sample_size` / `bench_function` /
//! `bench_with_input` / `finish`, `BenchmarkId`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros — with straightforward
//! wall-clock timing (fixed warm-up, then `sample_size` timed samples,
//! reporting min/mean/max). No statistical analysis, HTML reports, or
//! baseline comparisons.

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the optimiser from discarding a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark identifier: `function_name/parameter`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId { label: format!("{function_name}/{parameter}") }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

/// Things accepted as a benchmark name (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    fn into_label(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_label(self) -> String {
        self
    }
}

/// Benchmark runner handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        println!("\nbenchmark group: {name}");
        BenchmarkGroup { _criterion: self, name: name.to_string(), sample_size: 100 }
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into_label(), 100, f);
        self
    }
}

/// A named group of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        run_benchmark(&label, self.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        run_benchmark(&label, self.sample_size, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Passed to the closure; call [`Bencher::iter`] with the routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // warm-up: a few untimed runs to populate caches
        for _ in 0..2.min(self.sample_size) {
            black_box(routine());
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher { samples: Vec::new(), sample_size };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("  {label}: no samples recorded");
        return;
    }
    let min = bencher.samples.iter().min().unwrap();
    let max = bencher.samples.iter().max().unwrap();
    let mean = bencher.samples.iter().sum::<Duration>() / bencher.samples.len() as u32;
    println!(
        "  {label}: [{} {} {}] ({} samples)",
        fmt_duration(*min),
        fmt_duration(mean),
        fmt_duration(*max),
        bencher.samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        let mut runs = 0u32;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.finish();
        assert!(runs >= 5);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).label, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
    }
}
