//! Vendored minimal stand-in for the `rand` crate.
//!
//! Provides the subset the workspace uses: a deterministic `StdRng`
//! (xoshiro256++ seeded via splitmix64), `SeedableRng::seed_from_u64`,
//! `Rng::gen_range` over half-open and inclusive integer/float ranges, and
//! `distributions::{Distribution, WeightedIndex}`. Streams are reproducible
//! across runs for a given seed, which is all the experiments need — no
//! claim of statistical equivalence with upstream rand.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling helpers over an [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open or inclusive range.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

impl<T: RngCore + ?Sized> RngCore for &mut T {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// 64-bit word in `[0, 1)` as an f64 (53 mantissa bits).
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Range types [`Rng::gen_range`] accepts.
pub trait SampleRange {
    type Output;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Maps a random word into `[0, span)` via the widening-multiply trick
/// (bias is negligible for the span sizes used here).
fn bounded(word: u64, span: u64) -> u64 {
    ((word as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded(rng.next_u64(), span) as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded(rng.next_u64(), span as u64) as i128) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                self.start + (self.end - self.start) * unit_f64(rng.next_u64()) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                lo + (hi - lo) * unit_f64(rng.next_u64()) as $t
            }
        }
    )*};
}
impl_float_range!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic PRNG: xoshiro256++ seeded via splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            StdRng {
                s: [
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

pub mod distributions {
    use super::RngCore;
    use std::borrow::Borrow;

    /// A sampling distribution.
    pub trait Distribution<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Samples indices proportionally to a weight list.
    #[derive(Debug, Clone)]
    pub struct WeightedIndex {
        cumulative: Vec<f64>,
        total: f64,
    }

    /// Error for invalid weight lists.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct WeightedError(pub &'static str);

    impl std::fmt::Display for WeightedError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.0)
        }
    }

    impl std::error::Error for WeightedError {}

    impl WeightedIndex {
        pub fn new<I>(weights: I) -> Result<Self, WeightedError>
        where
            I: IntoIterator,
            I::Item: std::borrow::Borrow<f64>,
        {
            let mut cumulative = Vec::new();
            let mut total = 0.0f64;
            for w in weights {
                let w = *w.borrow();
                if !(w >= 0.0) || !w.is_finite() {
                    return Err(WeightedError("invalid weight"));
                }
                total += w;
                cumulative.push(total);
            }
            if cumulative.is_empty() || total <= 0.0 {
                return Err(WeightedError("no positive weights"));
            }
            Ok(WeightedIndex { cumulative, total })
        }
    }

    impl Distribution<usize> for WeightedIndex {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            let x = super::unit_f64(rng.next_u64()) * self.total;
            match self.cumulative.binary_search_by(|c| c.partial_cmp(&x).unwrap()) {
                Ok(i) => (i + 1).min(self.cumulative.len() - 1),
                Err(i) => i.min(self.cumulative.len() - 1),
            }
        }
    }

    // allow `dist.sample(&mut rng)` with the distribution behind a reference
    impl<T, D: Distribution<T>> Distribution<T> for &D {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            (**self).sample(rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, WeightedIndex};
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(10..20u64);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn weighted_index_prefers_heavy_weights() {
        let mut rng = StdRng::seed_from_u64(1);
        let dist = WeightedIndex::new(&[1.0, 0.0, 9.0]).unwrap();
        let mut counts = [0usize; 3];
        for _ in 0..5000 {
            counts[dist.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0] * 4, "counts: {counts:?}");
    }

    #[test]
    fn rejects_bad_weights() {
        assert!(WeightedIndex::new(&[] as &[f64]).is_err());
        assert!(WeightedIndex::new(&[0.0, 0.0]).is_err());
        assert!(WeightedIndex::new(&[-1.0, 2.0]).is_err());
    }
}
