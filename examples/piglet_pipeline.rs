//! A complete Piglet pipeline — the script language a demo visitor would
//! type into the paper's web front end (§4): load events, build
//! STObjects, partition, filter spatio-temporally, cluster, and dump.
//!
//! Run with: `cargo run --release --example piglet_pipeline`

use stark_engine::Context;
use stark_eventsim::{write_events_csv, EventGenerator};
use stark_geo::Envelope;
use stark_piglet::{Executor, Output};

fn main() {
    // stage a CSV dataset on "HDFS" (the local filesystem)
    let space = Envelope::from_bounds(0.0, 0.0, 100.0, 100.0);
    let events =
        EventGenerator::new(31).with_time_range(0..1000).clustered_points(2_000, 5, 1.5, &space);
    let path = std::env::temp_dir().join("stark-piglet-events.csv");
    write_events_csv(&path, &events).expect("write dataset");

    let script = format!(
        r#"
        -- load the raw event records
        raw = LOAD '{path}' AS (id:long, category:chararray, time:long, wkt:chararray);

        -- build spatio-temporal objects (paper's mapping step)
        events = FOREACH raw GENERATE id, category, ST(wkt, time) AS obj;

        -- spatially partition and index
        parts = PARTITION events BY BSP(200, 2.0) ON obj;
        indexed = INDEX parts ORDER 5;

        -- spatio-temporal selection: a window in space AND time
        -- (the box must cover some of seed 31's cluster hotspots)
        window = SPATIAL_FILTER indexed BY CONTAINEDBY(obj, ST('POLYGON((20 50, 70 50, 70 95, 20 95, 20 50))', 0, 500));

        -- non-spatial refinement and ordering
        concerts = FILTER window BY category == 'concert';
        top = ORDER concerts BY id;
        firstfew = LIMIT top 5;

        -- density-based clustering of everything in the window
        clusters = CLUSTER window BY DBSCAN(2.0, 10) ON obj;

        DESCRIBE clusters;
        DUMP firstfew;
        "#,
        path = path.display()
    );

    let mut executor = Executor::new(Context::new());
    let outputs = executor.run_script(&script).expect("script runs");

    for out in &outputs {
        match out {
            Output::Describe { schema, .. } => println!("{schema}"),
            Output::Dump { alias, lines } => {
                println!("DUMP {alias}:");
                for line in lines {
                    println!("  {line}");
                }
            }
            Output::Stored { .. } | Output::Explained { .. } => {}
        }
    }

    // sanity: the clustering found some structure
    let clustered = executor.collect("clusters").expect("clusters alias");
    let labelled =
        clustered.iter().filter(|t| !matches!(t.last(), Some(stark_piglet::Value::Null))).count();
    println!("{labelled} of {} window events belong to clusters", clustered.len());
    assert!(labelled > 0);
    let _ = std::fs::remove_file(&path);
    println!("piglet_pipeline OK");
}
