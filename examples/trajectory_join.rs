//! Trajectory × region joins: which storm tracks crossed which monitored
//! regions, and which events happened close to a track — exercising
//! extended (non-point) geometries, withinDistance with a custom metric,
//! spatial joins and persistent indexing.
//!
//! Run with: `cargo run --release --example trajectory_join`

use stark::{GridPartitioner, IndexedSpatialRdd, JoinConfig, STObject, STPredicate, SpatialRddExt};
use stark_engine::{Context, ObjectStore};
use stark_eventsim::EventGenerator;
use stark_geo::Envelope;
use std::sync::Arc;

fn main() {
    let ctx = Context::new();
    let space = Envelope::from_bounds(0.0, 0.0, 500.0, 500.0);
    let mut generator = EventGenerator::new(7171);

    // 300 storm tracks (linestrings) and 400 monitored regions (rects)
    let tracks: Vec<(STObject, (u64, String))> = generator
        .trajectories(300, 12, 8.0, &space)
        .into_iter()
        .map(|e| {
            let (st, p) = e.to_pair();
            (st, p)
        })
        .collect();
    let regions: Vec<(STObject, (u64, String))> = generator
        .rect_regions(400, 25.0, &space)
        .into_iter()
        .map(|e| {
            let (st, p) = e.to_pair();
            (st, p)
        })
        .collect();

    let tracks = ctx.parallelize(tracks, 6).spatial();
    let regions = ctx.parallelize(regions, 6).spatial();

    // spatially partition the tracks; the join aligns the regions side
    let part = Arc::new(GridPartitioner::build(5, &tracks.summarize()));
    let tracks = tracks.partition_by(part);

    // tracks intersecting regions (note: both sides carry instants, so
    // the combined predicate also requires temporal intersection — use
    // timeless copies to ask the purely spatial question)
    let timeless_tracks = tracks.rdd().map(|(o, v)| (STObject::new(o.geo().clone()), v)).spatial();
    let timeless_regions =
        regions.rdd().map(|(o, v)| (STObject::new(o.geo().clone()), v)).spatial();
    let crossings =
        timeless_tracks.join(&timeless_regions, STPredicate::Intersects, JoinConfig::default());
    println!("track × region intersections: {}", crossings.count());

    // tracks passing within distance 5 of a headquarters point
    let hq = STObject::point(250.0, 250.0);
    let near_hq = timeless_tracks.within_distance(&hq, 5.0, stark_geo::DistanceFn::Euclidean);
    println!("tracks passing within 5 units of HQ: {}", near_hq.count());

    // persist an index of the regions for later programs
    let dir = std::env::temp_dir().join("stark-example-trajectory-index");
    let _ = std::fs::remove_dir_all(&dir);
    let store = ObjectStore::open(&dir).expect("store");
    let regions_idx = timeless_regions.live_index(5);
    regions_idx.persist(&store, "regions").expect("persist");

    // ... and reload it, as a second program would
    let loaded: IndexedSpatialRdd<(u64, String)> =
        IndexedSpatialRdd::load(&ctx, &store, "regions").expect("load");
    let probe =
        STObject::from_wkt("POLYGON((200 200, 300 200, 300 300, 200 300, 200 200))").expect("wkt");
    let hits = loaded.intersects(&probe).count();
    println!("regions intersecting the probe window (via persisted index): {hits}");

    let direct = timeless_regions.filter(&probe, STPredicate::Intersects).count();
    assert_eq!(hits, direct, "persisted index must agree with a direct scan");
    let _ = std::fs::remove_dir_all(&dir);
    println!("trajectory_join OK");
}
