//! Event analytics on a skewed world dataset — the paper's demonstration
//! scenario (§4): spatio-temporal selection, k-nearest-neighbour search,
//! density-based clustering, and an ASCII world map standing in for the
//! web front end's result visualisation.
//!
//! Run with: `cargo run --release --example event_analytics`

use stark::cluster::{colocation_patterns, dbscan, ColocationParams, DbscanParams};
use stark::{BspPartitioner, STObject, STPredicate, SpatialPartitioner, SpatialRddExt};
use stark_engine::Context;
use stark_eventsim::{EventGenerator, Gazetteer};
use stark_geo::DistanceFn;
use std::collections::HashMap;
use std::sync::Arc;

const MAP_W: usize = 72;
const MAP_H: usize = 24;

/// Renders points on a lon/lat ASCII map; `label` picks the glyph.
fn render_map<'a>(points: impl Iterator<Item = (&'a STObject, char)>) -> String {
    let mut grid = vec![vec!['.'; MAP_W]; MAP_H];
    for (obj, glyph) in points {
        let c = obj.centroid();
        let x = (((c.x + 180.0) / 360.0) * (MAP_W as f64 - 1.0)).round() as usize;
        let y = (((90.0 - c.y) / 180.0) * (MAP_H as f64 - 1.0)).round() as usize;
        if y < MAP_H && x < MAP_W {
            grid[y][x] = glyph;
        }
    }
    grid.into_iter().map(|row| row.into_iter().collect::<String>() + "\n").collect()
}

fn main() {
    let ctx = Context::new();
    println!("generating 20,000 world events (land only, population-skewed)...");
    let events: Vec<(STObject, (u64, String))> = EventGenerator::new(2017)
        .world_events(20_000)
        .into_iter()
        .map(|e| {
            let (st, payload) = e.to_pair();
            (st, payload)
        })
        .collect();
    let rdd = ctx.parallelize(events, 8);

    // --- spatial partitioning (cost-based BSP handles the skew) --------
    let srdd = rdd.spatial();
    let summary = srdd.summarize();
    let bsp = Arc::new(BspPartitioner::build(800, 2.0, &summary));
    println!("BSP produced {} partitions over the skewed data", bsp.num_partitions());
    let partitioned = srdd.partition_by(bsp);

    // --- spatio-temporal selection: events in Europe, first half -------
    let europe =
        STObject::from_wkt_interval("POLYGON((-10 36, 30 36, 30 60, -10 60, -10 36))", 0, 500_000)
            .unwrap();
    let before = ctx.metrics();
    let in_europe = partitioned.filter(&europe, STPredicate::ContainedBy);
    let count = in_europe.count();
    let delta = ctx.metrics().diff(&before);
    println!(
        "events in Europe during [0, 500000): {count} (pruned {} of {} partitions)",
        delta.partitions_pruned,
        partitioned.num_partitions()
    );

    // --- kNN around Berlin ---------------------------------------------
    let berlin = STObject::point(13.40, 52.52);
    let nn = partitioned.knn(&berlin, 5, DistanceFn::Haversine);
    println!("5 nearest events to Berlin (great-circle):");
    for (d, (obj, (id, cat))) in &nn {
        println!("  {:>8.1} km  event {id} ({cat}) at {obj}", d / 1000.0);
    }

    // --- DBSCAN clustering ----------------------------------------------
    println!("clustering with DBSCAN(eps=2.0, minPts=40)...");
    let clustered = dbscan(&partitioned, DbscanParams::new(2.0, 40)).collect();
    let mut cluster_ids: Vec<u64> = clustered.iter().filter_map(|(_, _, c)| *c).collect();
    cluster_ids.sort_unstable();
    cluster_ids.dedup();
    let noise = clustered.iter().filter(|(_, _, c)| c.is_none()).count();
    println!("found {} clusters, {noise} noise points", cluster_ids.len());

    // --- reverse geocoding: name each cluster by its nearest city -------
    let gazetteer = Gazetteer::new();
    let mut cluster_centroids: HashMap<u64, (f64, f64, usize)> = HashMap::new();
    for (obj, _, c) in &clustered {
        if let Some(id) = c {
            let e = cluster_centroids.entry(*id).or_insert((0.0, 0.0, 0));
            let p = obj.centroid();
            e.0 += p.x;
            e.1 += p.y;
            e.2 += 1;
        }
    }
    let mut named: Vec<(u64, usize, String, f64)> = cluster_centroids
        .into_iter()
        .map(|(id, (sx, sy, n))| {
            let centre = stark_geo::Coord::new(sx / n as f64, sy / n as f64);
            let (place, d) = gazetteer.reverse_geocode(&centre).expect("gazetteer");
            (id, n, format!("{}, {}", place.name, place.country), d / 1000.0)
        })
        .collect();
    named.sort_by_key(|(_, n, _, _)| std::cmp::Reverse(*n));
    println!("largest clusters, reverse-geocoded:");
    for (id, n, place, km) in named.iter().take(8) {
        println!("  cluster {id}: {n} events near {place} ({km:.0} km from centre)");
    }

    // --- co-location: which categories occur together? ------------------
    let patterns = colocation_patterns(
        &partitioned,
        |(_, cat): &(u64, String)| cat.clone(),
        ColocationParams::new(0.5, 0.05),
    );
    println!("co-location patterns (distance 0.5°, PI >= 0.05): {}", patterns.len());
    for p in patterns.iter().take(5) {
        println!(
            "  {} + {} (PI {:.2}, {} pairs)",
            p.categories.0, p.categories.1, p.participation_index, p.pair_count
        );
    }

    // --- "web front end": ASCII map of the clusters ---------------------
    let glyphs = ['#', '@', '%', '&', '*', '+', 'o', 'x', '=', '~'];
    let map = render_map(clustered.iter().map(|(obj, _, c)| {
        let glyph = match c {
            Some(id) => glyphs[(*id as usize) % glyphs.len()],
            None => '.',
        };
        (obj, glyph)
    }));
    println!("{map}");

    assert!(count > 0);
    assert!(!nn.is_empty());
    assert!(!cluster_ids.is_empty());
    println!("event_analytics OK");
}
