-- Demonstration pipeline for the piglet REPL / runner:
--   cargo run -p stark-piglet --bin piglet -- examples/scripts/event_analysis.pig
-- (generate the input first, e.g. with stark-eventsim's write_events_csv,
--  or point LOAD at any CSV with the (id, category, time, wkt) schema)

raw     = LOAD '/tmp/stark-demo-events.csv' AS (id:long, category:chararray, time:long, wkt:chararray);
events  = FOREACH raw GENERATE id, category, ST(wkt, time) AS obj;

-- spatially partition with the cost-based binary space partitioner
parts   = PARTITION events BY BSP(500, 1.0) ON obj;
indexed = INDEX parts ORDER 5;

-- a window in space AND time
window  = SPATIAL_FILTER indexed BY CONTAINEDBY(obj, ST('POLYGON((0 0, 60 0, 60 60, 0 60, 0 0))', 0, 500000));

-- classic relational refinement
concerts = FILTER window BY category == 'concert';
top      = ORDER concerts BY id;
first10  = LIMIT top 10;

-- analytics: counts per category, clusters, co-located categories
byCat    = GROUP window BY category;
clusters = CLUSTER window BY DBSCAN(2.0, 10) ON obj;
pairs    = COLOCATE window BY category ON obj DISTANCE 1.0 MINPI 0.1;

DESCRIBE clusters;
DUMP first10;
DUMP byCat;
DUMP pairs;
STORE clusters INTO '/tmp/stark-demo-clusters.csv';
