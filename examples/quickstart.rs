//! Quickstart: the paper's §2.3 running example, end to end.
//!
//! Raw `(id, category, time, wkt)` records are mapped to
//! `(STObject, (id, category))` pairs, then filtered with `containedBy`
//! against a spatio-temporal query window — once plain, once through a
//! live index — exactly mirroring the Scala snippet in the paper.
//!
//! Run with: `cargo run --example quickstart`

use stark::{STObject, SpatialRddExt};
use stark_engine::Context;

fn main() {
    let ctx = Context::new();

    // Pretend this came from HDFS: RDD[(Int, String, Long, String)]
    let raw_input: Vec<(i32, String, i64, String)> = vec![
        (1, "concert".into(), 120, "POINT(13.40 52.52)".into()), // Berlin
        (2, "protest".into(), 150, "POINT(13.38 52.51)".into()), // Berlin
        (3, "flood".into(), 800, "POINT(8.68 50.11)".into()),    // Frankfurt
        (4, "concert".into(), 130, "POINT(2.35 48.85)".into()),  // Paris
        (5, "earthquake".into(), 135, "POINT(139.69 35.68)".into()), // Tokyo
    ];

    // val events = rawInput.map { case (id, ctgry, time, wkt) =>
    //   ( STObject(wkt, time), (id, ctgry) ) }
    let events = ctx.parallelize(raw_input, 2).map(|(id, ctgry, time, wkt)| {
        (STObject::from_wkt_instant(&wkt, time).expect("valid WKT"), (id, ctgry))
    });

    // val qry = STObject("POLYGON((...))", begin, end)
    // a window around Berlin, during [100, 200)
    let qry = STObject::from_wkt_interval(
        "POLYGON((13.0 52.3, 13.8 52.3, 13.8 52.7, 13.0 52.7, 13.0 52.3))",
        100,
        200,
    )
    .expect("valid query");

    // val contain = events.containedBy(qry)
    let contain = events.contained_by(&qry);
    println!("containedBy(qry):");
    for (obj, (id, ctgry)) in contain.collect() {
        println!("  event {id} ({ctgry}) at {obj}");
    }

    // val intersect = events.liveIndex(order = 5).intersect(qry)
    let intersect = events.spatial().live_index(5).intersects(&qry);
    println!("liveIndex(5).intersects(qry): {} matches", intersect.count());

    assert_eq!(contain.count(), 2, "events 1 and 2 are in the window");
    assert_eq!(intersect.count(), 2);
    println!("quickstart OK");
}
