//! Streaming event monitoring — the paper's scenario run continuously:
//! events arrive in micro-batches, tumbling event-time windows count and
//! grid-aggregate them, DBSCAN flags hotspots per window, and standing
//! queries (a region filter and a kNN monitor) are re-evaluated on every
//! batch through the incrementally maintained index.
//!
//! Run with: `cargo run --release --example streaming`

use stark::cluster::DbscanParams;
use stark::{DataSummary, GridPartitioner, STObject, STPredicate, SpatialPartitioner};
use stark_engine::Context;
use stark_geo::{Coord, Envelope};
use stark_stream::{
    ContinuousQueryEngine, GeneratorSource, LatePolicy, MemorySink, StandingQuery, StreamConfig,
    StreamContext, StreamJob, WindowSpec,
};
use std::sync::Arc;

fn main() {
    let space = Envelope::from_bounds(0.0, 0.0, 1000.0, 1000.0);
    let summary: DataSummary = [(0.0, 0.0), (1000.0, 1000.0)]
        .iter()
        .map(|&(x, y)| (Envelope::from_point(Coord::new(x, y)), Coord::new(x, y)))
        .collect();
    let partitioner: Arc<dyn SpatialPartitioner> = Arc::new(GridPartitioner::build(6, &summary));

    // a hot region in the city centre and a monitor around a venue
    let region = STObject::from_wkt_interval(
        "POLYGON((400 400, 600 400, 600 600, 400 600, 400 400))",
        0,
        i64::MAX / 2,
    )
    .expect("well-formed region");
    let venue = STObject::point(250.0, 250.0);

    let ctx = Context::new();
    let sc = StreamContext::with_config(
        ctx.clone(),
        StreamConfig {
            batch_records: 2_000,
            channel_capacity: 4,
            parallelism: 4,
            ..Default::default()
        },
    );
    let sink = MemorySink::new();
    let job = StreamJob::new()
        .with_windows(WindowSpec::tumbling(2_000), 200, LatePolicy::Drop)
        .with_grid_aggregation(10, space)
        .with_hotspots(DbscanParams::new(15.0, 8))
        .with_queries(
            ContinuousQueryEngine::indexed(partitioner, 16)
                .with_query(StandingQuery::filter("centre", region, STPredicate::Intersects))
                .with_query(StandingQuery::knn("venue-knn", venue, 5)),
        )
        .with_sink(sink.clone());

    println!("streaming 10 micro-batches of 2,000 events each...\n");
    let report = sc.run(GeneratorSource::new(2017, space, 10, 1_000, 250), job);

    let state = sink.state();
    println!("batch  records  latency    events/s  rebuilt  queue");
    for b in &state.batches {
        println!(
            "{:>5}  {:>7}  {:>7.2}ms  {:>8.0}  {:>7}  {:>5}",
            b.batch,
            b.records,
            b.latency.as_secs_f64() * 1e3,
            b.events_per_sec,
            b.partitions_rebuilt,
            b.queue_depth,
        );
    }

    println!("\nfired windows:");
    for w in &state.windows {
        println!(
            "  [{:>5}, {:>5})  {:>5} events, {:>2} non-empty cells, {} hotspots",
            w.start,
            w.end,
            w.count,
            w.grid.len(),
            w.hotspot_clusters,
        );
    }

    if let Some((batch, results)) = state.query_results.last() {
        println!("\nstanding queries after batch {batch}:");
        for r in results {
            println!("  {:<10} {:>6} results", r.name, r.output.len());
        }
    }

    println!(
        "\n{} records in {:.2}s processing time ({:.0} events/s overall, {} late dropped)",
        report.total_records(),
        report.processing_time().as_secs_f64(),
        report.events_per_sec(),
        report.late_dropped(),
    );
    let m = ctx.metrics();
    println!(
        "[engine] jobs={} tasks={} task_time={:.2}s",
        m.jobs,
        m.tasks_launched,
        m.task_nanos as f64 / 1e9
    );
}
