//! Distributed chaos: kill one of N real worker processes mid-job and
//! prove the supervisor's recovery is invisible in the results.
//!
//! Every test runs a spatial pipeline twice — single-process reference
//! vs a [`WorkerPool`] of forked `stark-worker` processes with a
//! one-shot `KillWorker` transport fault — and pins three invariants:
//!
//! 1. results are **byte-identical** to the fault-free reference,
//! 2. `tasks_reassigned == injected` (each injected loss costs exactly
//!    one reassignment, never more),
//! 3. exactly one worker was lost.
//!
//! The kill lands mid-shuffle (stage-1 task frame) in one test and
//! mid-checkpoint in another; the property test additionally draws the
//! data seed, worker count and predicate from proptest. Set
//! `STARK_CHAOS_SEED=<u64>` to replay the end-to-end tests with a
//! different dataset seed (CI pins one).

use proptest::prelude::*;
use stark::distributed::{self_join_pairs, to_arg, EventRow, SelfJoinArg, StFilterArg};
use stark::{GridPartitioner, STPredicate, SpatialPartitioner};
use stark_engine::plan::{
    decode_rows, encode_rows, PlanFragment, PlanInput, PlanOp, PlanSink, TaskOutput,
};
use stark_engine::supervisor::{bucket_keys_for_partition, find_worker_bin, DistTask};
use stark_engine::{TaskResult, TransportChaos, TransportPolicy, WorkerPool, WorkerPoolConfig};
use stark_eventsim::EventGenerator;
use stark_geo::Envelope;
use std::path::PathBuf;
use std::sync::Arc;

const DEFAULT_CHAOS_SEED: u64 = 0xC4A05;

fn chaos_seed() -> u64 {
    match std::env::var("STARK_CHAOS_SEED") {
        Ok(s) => s.trim().parse().expect("STARK_CHAOS_SEED must be a u64"),
        Err(_) => DEFAULT_CHAOS_SEED,
    }
}

fn worker_bin() -> PathBuf {
    find_worker_bin("stark-worker")
        .expect("stark-worker binary not built; `cargo test` builds workspace bins first")
}

fn space() -> Envelope {
    Envelope::from_bounds(0.0, 0.0, 1000.0, 1000.0)
}

/// `n` clustered spatio-temporal events, deterministic in `seed`.
fn events(seed: u64, n: usize) -> Vec<EventRow> {
    let mut g = EventGenerator::new(seed);
    g.clustered_points(n, 10, 8.0, &space()).iter().map(|e| e.to_pair()).collect()
}

fn grid_for(data: &[EventRow]) -> GridPartitioner {
    let summary: stark::DataSummary =
        data.iter().map(|(o, _)| (o.envelope(), o.centroid())).collect();
    GridPartitioner::build(4, &summary)
}

fn kill_pool(workers: usize) -> (WorkerPool, Arc<TransportChaos>) {
    let chaos = Arc::new(TransportChaos::once(TransportPolicy::KillWorker));
    let mut cfg = WorkerPoolConfig::new(worker_bin());
    cfg.workers = workers;
    cfg.chaos = Some(chaos.clone());
    (WorkerPool::spawn(cfg).expect("spawn chaos pool"), chaos)
}

/// Shuffle `data` through the grid partitioner inside the workers, then
/// run `ops`+`sink` per partition over the written buckets. The chaos
/// policy (if any) strikes the first stage-1 dispatch: mid-shuffle.
fn two_stage(
    pool: &mut WorkerPool,
    data: &[EventRow],
    grid: &GridPartitioner,
    tasks: usize,
    ops: Vec<PlanOp>,
    sink: PlanSink,
) -> Vec<TaskResult> {
    let parts = grid.num_partitions();
    let chunk = data.len().div_ceil(tasks.max(1)).max(1);
    let map_tasks: Vec<DistTask> = data
        .chunks(chunk)
        .enumerate()
        .map(|(task, rows)| {
            DistTask::with_rows(
                PlanFragment {
                    schema: "event".into(),
                    input: PlanInput::Inline,
                    ops: Vec::new(),
                    sink: PlanSink::ShuffleWrite {
                        partitioner: "grid".into(),
                        arg: to_arg(grid),
                        num_partitions: parts,
                        prefix: "dc/s0".into(),
                        task,
                    },
                },
                encode_rows(rows).expect("encode chunk"),
            )
        })
        .collect();
    let counts: Vec<Vec<u64>> = pool
        .execute(&map_tasks)
        .expect("shuffle stage")
        .iter()
        .map(|r| match &r.output {
            TaskOutput::BucketCounts(c) => c.clone(),
            other => panic!("expected bucket counts, got {other:?}"),
        })
        .collect();
    let reduce_tasks: Vec<DistTask> = (0..parts)
        .map(|p| {
            DistTask::new(PlanFragment {
                schema: "event".into(),
                input: PlanInput::Store { keys: bucket_keys_for_partition("dc/s0", &counts, p) },
                ops: ops.clone(),
                sink: sink.clone(),
            })
        })
        .collect();
    pool.execute(&reduce_tasks).expect("reduce stage")
}

fn sorted_ids(results: &[TaskResult]) -> Vec<u64> {
    let mut ids: Vec<u64> = results
        .iter()
        .flat_map(|r| {
            decode_rows::<EventRow>(r.payload.as_deref().expect("collect payload"))
                .expect("decode rows")
        })
        .map(|(_, (id, _))| id)
        .collect();
    ids.sort_unstable();
    ids
}

fn assert_exactly_one_kill(pool: &WorkerPool, chaos: &TransportChaos) {
    let stats = pool.stats();
    assert_eq!(chaos.injected(), 1, "one-shot chaos must have struck");
    assert_eq!(
        stats.tasks_reassigned,
        chaos.injected(),
        "each injected loss must cost exactly one reassignment"
    );
    assert_eq!(stats.workers_lost, 1);
}

/// A query box over the densest quarter of the space, timed to cover the
/// generator's whole time range (timed rows only match timed queries).
fn query() -> stark::STObject {
    stark::STObject::from_wkt_interval(
        "POLYGON((250 250, 750 250, 750 750, 250 750, 250 250))",
        0,
        2_000_000,
    )
    .unwrap()
}

#[test]
fn worker_kill_mid_shuffle_keeps_the_filter_byte_identical() {
    let data = events(chaos_seed(), 2_000);
    let grid = grid_for(&data);
    let q = query();
    let mut reference: Vec<u64> = data
        .iter()
        .filter(|(o, _)| STPredicate::ContainedBy.eval(o, &q))
        .map(|(_, (id, _))| *id)
        .collect();
    reference.sort_unstable();
    assert!(!reference.is_empty(), "the query box must select something");

    let (mut pool, chaos) = kill_pool(4);
    let filter = PlanOp::Filter {
        op: "st_filter".into(),
        arg: to_arg(&StFilterArg { query: q, predicate: STPredicate::ContainedBy }),
    };
    let results = two_stage(&mut pool, &data, &grid, 8, vec![filter], PlanSink::Collect);
    assert_eq!(sorted_ids(&results), reference, "recovery must be invisible in the results");
    assert_exactly_one_kill(&pool, &chaos);
    pool.shutdown();
}

#[test]
fn worker_kill_mid_checkpoint_leaves_recoverable_blobs() {
    let data = events(chaos_seed() ^ 0x9E37, 1_200);
    let chunk = data.len().div_ceil(6);
    let chunks: Vec<&[EventRow]> = data.chunks(chunk).collect();

    let (mut pool, chaos) = kill_pool(3);
    let tasks: Vec<DistTask> = chunks
        .iter()
        .enumerate()
        .map(|(p, rows)| {
            DistTask::with_rows(
                PlanFragment {
                    schema: "event".into(),
                    input: PlanInput::Inline,
                    ops: Vec::new(),
                    sink: PlanSink::Checkpoint { key: "dc/ck".into(), partition: p },
                },
                encode_rows(rows).expect("encode chunk"),
            )
        })
        .collect();
    let results = pool.execute(&tasks).expect("checkpoint stage");

    // Every partition blob a worker wrote must round-trip byte-identical
    // to the rows the driver shipped — including the reassigned one.
    for (p, (rows, result)) in chunks.iter().zip(&results).enumerate() {
        let key = match &result.output {
            TaskOutput::Checkpointed { key, rows: n, .. } => {
                assert_eq!(*n, rows.len() as u64, "partition {p} row count");
                key.clone()
            }
            other => panic!("expected checkpoint output, got {other:?}"),
        };
        let back: Vec<EventRow> = pool.store().get_json(&key).expect("read checkpoint blob");
        assert_eq!(&back, rows, "partition {p} blob diverged");
    }
    assert_exactly_one_kill(&pool, &chaos);
    pool.shutdown();
}

proptest! {
    // Forking real processes is expensive; a few drawn cases suffice on
    // top of the fixed-seed end-to-end tests above.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Killing 1 of N workers never changes the self-join result, for
    /// any data seed, worker count and join radius.
    #[test]
    fn killing_one_of_n_workers_never_changes_self_join_results(
        seed in 0u64..1_000_000,
        workers in 2usize..=4,
        radius in 2.0f64..12.0,
    ) {
        let data = events(seed, 600);
        let grid = grid_for(&data);
        let pred = STPredicate::within_distance(radius);

        // Single-process reference: same grid routing, same per-partition
        // join, plain iterators.
        let mut by_part: Vec<Vec<EventRow>> = vec![Vec::new(); grid.num_partitions()];
        for row in &data {
            by_part[grid.partition_of(&row.0)].push(row.clone());
        }
        let mut reference: Vec<(u64, u64)> =
            by_part.iter().flat_map(|rows| self_join_pairs(rows, pred)).collect();
        reference.sort_unstable();

        let (mut pool, chaos) = kill_pool(workers);
        let sink = PlanSink::CollectWith {
            op: "self_join_pairs".into(),
            arg: to_arg(&SelfJoinArg { predicate: pred }),
        };
        let results = two_stage(&mut pool, &data, &grid, workers * 2, Vec::new(), sink);
        let mut pairs: Vec<(u64, u64)> = results
            .iter()
            .flat_map(|r| match &r.output {
                TaskOutput::Json(v) => {
                    let pairs: Vec<(u64, u64)> =
                        serde::Deserialize::from_value(v).expect("decode pairs");
                    pairs
                }
                other => panic!("expected JSON pairs, got {other:?}"),
            })
            .collect();
        pairs.sort_unstable();

        prop_assert_eq!(pairs, reference);
        prop_assert_eq!(chaos.injected(), 1);
        prop_assert_eq!(pool.stats().tasks_reassigned, 1);
        prop_assert_eq!(pool.stats().workers_lost, 1);
        pool.shutdown();
    }
}
