//! Tests that walk through the paper's own narrative artifacts: the §2.3
//! code example, the formal predicate definition (eqs. 1–3), the Figure 2
//! workflow, and the §4 demonstration scenarios via Piglet.

use stark::{STObject, STPredicate, SpatialRddExt, Temporal};
use stark_engine::Context;
use stark_piglet::{Executor, Output, Value};

/// The exact §2.3 example: schema (id, category, time, wkt), mapping to
/// (STObject, (id, category)), then containedBy and indexed intersects.
#[test]
fn section_2_3_example() {
    let ctx = Context::with_parallelism(2);
    let raw_input: Vec<(i32, String, i64, String)> = vec![
        (1, "a".into(), 10, "POINT(1 1)".into()),
        (2, "b".into(), 20, "POINT(2 2)".into()),
        (3, "c".into(), 99, "POINT(3 3)".into()),
        (4, "d".into(), 15, "POINT(9 9)".into()),
    ];
    let events = ctx.parallelize(raw_input, 2).map(|(id, ctgry, time, wkt)| {
        (STObject::from_wkt_instant(&wkt, time).unwrap(), (id, ctgry))
    });

    let qry = STObject::from_wkt_interval(
        "POLYGON((0 0, 5 0, 5 5, 0 5, 0 0))",
        /* begin */ 5,
        /* end */ 30,
    )
    .unwrap();

    // val contain = events.containedBy(qry)
    let contain = events.contained_by(&qry);
    let mut ids: Vec<i32> = contain.collect().into_iter().map(|(_, (id, _))| id).collect();
    ids.sort_unstable();
    assert_eq!(ids, vec![1, 2], "events 1,2 in space AND time; 3 wrong time; 4 wrong place");

    // val intersect = events.liveIndex(order = 5).intersect(qry)
    let intersect = events.spatial().live_index(5).intersects(&qry);
    let mut ids: Vec<i32> = intersect.collect().into_iter().map(|(_, (id, _))| id).collect();
    ids.sort_unstable();
    assert_eq!(ids, vec![1, 2]);
}

/// The formal definition (eqs. 1–3) spelled out case by case.
#[test]
fn formal_predicate_definition() {
    let g = "POLYGON((0 0, 10 0, 10 10, 0 10, 0 0))";
    let inside = "POINT(5 5)";
    let outside = "POINT(50 50)";

    // case (2): both temporal components undefined → spatial only
    let o = STObject::from_wkt(inside).unwrap();
    let p = STObject::from_wkt(g).unwrap();
    assert!(o.contained_by(&p));
    assert!(!STObject::from_wkt(outside).unwrap().contained_by(&p));

    // case (3): both defined → both predicates must hold
    let o = STObject::from_wkt_instant(inside, 50).unwrap();
    let p = STObject::from_wkt_interval(g, 0, 100).unwrap();
    assert!(o.contained_by(&p));
    let o_late = STObject::from_wkt_instant(inside, 100).unwrap(); // end exclusive
    assert!(!o_late.contained_by(&p));

    // mixed definedness → false regardless of geometry
    let timed = STObject::from_wkt_instant(inside, 50).unwrap();
    let untimed = STObject::from_wkt(g).unwrap();
    assert!(!timed.contained_by(&untimed));
    assert!(!untimed.contains(&timed));
    assert!(!timed.intersects(&untimed));

    // temporal component is an interval on both sides
    let iv_obj =
        STObject::with_time(stark_geo::Geometry::point(5.0, 5.0), Temporal::interval(10, 20));
    let iv_qry = STObject::from_wkt_interval(g, 0, 15).unwrap();
    assert!(iv_obj.intersects(&iv_qry), "overlapping intervals intersect");
    assert!(!iv_obj.contained_by(&iv_qry), "[10,20) not contained in [0,15)");
}

/// §4 demonstration: a full Piglet analysis pipeline (the kind a visitor
/// would compose in the web front end).
#[test]
fn demonstration_scenario_piglet() {
    let mut ex = Executor::new(Context::with_parallelism(2));

    // synthetic "extracted Wikipedia events"
    let rows: Vec<Vec<Value>> = (0..400)
        .map(|i| {
            let (x, y) = if i % 2 == 0 {
                (10.0 + (i % 20) as f64 * 0.05, 50.0 + (i % 10) as f64 * 0.05)
            } else {
                (-70.0 + (i % 20) as f64 * 0.05, 40.0 + (i % 10) as f64 * 0.05)
            };
            vec![
                Value::Int(i),
                Value::Str(if i % 3 == 0 { "concert" } else { "protest" }.into()),
                Value::Int(i * 5),
                Value::Str(format!("POINT({x} {y})")),
            ]
        })
        .collect();
    ex.register("raw", vec!["id".into(), "category".into(), "time".into(), "wkt".into()], rows);

    let out = ex
        .run_script(
            r#"
            events = FOREACH raw GENERATE id, category, ST(wkt, time) AS obj;
            parts = PARTITION events BY GRID(4) ON obj;
            europe = SPATIAL_FILTER parts BY CONTAINEDBY(obj, ST('POLYGON((0 45, 20 45, 20 55, 0 55, 0 45))', 0, 10000));
            concerts = FILTER europe BY category == 'concert';
            clusters = CLUSTER europe BY DBSCAN(0.5, 5) ON obj;
            near = KNN events BY obj QUERY ST('POINT(10 50)') K 5;
            DUMP concerts;
            DESCRIBE clusters;
            "#,
        )
        .unwrap();

    // concerts: even ids (Europe) that are multiples of 3 → i % 6 == 0
    match &out[0] {
        Output::Dump { lines, .. } => {
            assert_eq!(lines.len(), (0..400).filter(|i| i % 6 == 0).count());
        }
        other => panic!("{other:?}"),
    }
    match &out[1] {
        Output::Describe { schema, .. } => assert!(schema.ends_with("cluster)")),
        other => panic!("{other:?}"),
    }

    // the European events form one dense cluster
    let clustered = ex.collect("clusters").unwrap();
    assert_eq!(clustered.len(), 200);
    let labelled = clustered.iter().filter(|t| !matches!(t.last(), Some(Value::Null))).count();
    assert!(labelled > 150, "dense grid should mostly cluster: {labelled}");

    // kNN returned the 5 nearest with ascending distance column
    let knn = ex.collect("near").unwrap();
    assert_eq!(knn.len(), 5);
    let dists: Vec<f64> = knn
        .iter()
        .map(|t| match t.last() {
            Some(Value::Double(d)) => *d,
            other => panic!("bad distance {other:?}"),
        })
        .collect();
    assert!(dists.windows(2).all(|w| w[0] <= w[1]));
}

/// The paper's claim that operators compose with plain engine operations
/// ("seamlessly integrated into the Spark API").
#[test]
fn seamless_composition_with_engine_ops() {
    let ctx = Context::with_parallelism(4);
    let events = ctx
        .parallelize((0..1000).collect::<Vec<i64>>(), 8)
        // plain engine map...
        .map(|i| (STObject::point_at((i % 100) as f64, (i / 100) as f64, i), i))
        // ...plain engine filter...
        .filter(|(_, i)| i % 2 == 0)
        // ...spatio-temporal operator via the extension trait...
        .contained_by(
            &STObject::from_wkt_interval("POLYGON((0 0, 50 0, 50 5, 0 5, 0 0))", 0, 100_000)
                .unwrap(),
        );
    // ...and back to plain engine ops on the result
    let sum: i64 = events.rdd().map(|(_, i)| i).reduce(|a, b| a + b).unwrap_or(0);
    let expect: i64 = (0..1000).filter(|i| i % 2 == 0 && i % 100 <= 50 && i / 100 <= 5).sum();
    assert_eq!(sum, expect);
}

/// Filters under every combination of partitioning/indexing modes return
/// identical results ("transparent to the subsequent query operators").
#[test]
fn transparency_of_partitioning_and_indexing() {
    use stark::{BspPartitioner, GridPartitioner, SpatialPartitioner};
    use std::sync::Arc;

    let ctx = Context::with_parallelism(4);
    let data: Vec<(STObject, u32)> = (0..2000)
        .map(|i| (STObject::point_at(((i * 7) % 97) as f64, ((i * 13) % 89) as f64, i as i64), i))
        .collect();
    let rdd = ctx.parallelize(data, 7).spatial();
    let q = STObject::from_wkt_interval("POLYGON((10 10, 40 10, 40 40, 10 40, 10 10))", 0, 10_000)
        .unwrap();

    let expected = rdd.filter(&q, STPredicate::Intersects).count();
    assert!(expected > 0);

    let summary = rdd.summarize();
    let partitioners: Vec<Arc<dyn SpatialPartitioner>> = vec![
        Arc::new(GridPartitioner::build(3, &summary)),
        Arc::new(GridPartitioner::build(9, &summary)),
        Arc::new(BspPartitioner::build(100, 5.0, &summary)),
    ];
    for p in partitioners {
        let part = rdd.partition_by(p);
        assert_eq!(part.filter(&q, STPredicate::Intersects).count(), expected);
        for order in [2, 5, 20] {
            assert_eq!(part.live_index(order).intersects(&q).count(), expected);
        }
    }
}

/// The §4 demo utilities beyond querying: validity screening on ingest,
/// trajectory simplification, convex hulls, reverse geocoding and grid
/// aggregation — chained into one pipeline.
#[test]
fn demo_utilities_pipeline() {
    use stark_eventsim::{EventGenerator, Gazetteer};
    use stark_geo::{convex_hull, is_valid, simplify, Envelope, Geometry};

    let ctx = Context::with_parallelism(4);
    let space = Envelope::from_bounds(-10.0, 40.0, 30.0, 60.0); // "Europe"
    let mut generator = EventGenerator::new(4711);

    // ingest: points + trajectories, screened for validity
    let mut events = generator.uniform_points(500, &space);
    events.extend(generator.trajectories(50, 20, 0.5, &space));
    let records: Vec<(STObject, u64)> = events
        .iter()
        .filter(|e| is_valid(&e.geometry))
        .map(|e| {
            let (st, (id, _)) = e.to_pair();
            (st, id)
        })
        .collect();
    assert_eq!(records.len(), 550, "generated data must be valid");

    // trajectory simplification shrinks vertex counts without breaking
    // validity
    for e in events.iter().filter(|e| matches!(e.geometry, Geometry::LineString(_))) {
        if let Geometry::LineString(l) = &e.geometry {
            let s = simplify(l, 0.3);
            assert!(s.num_coords() <= l.num_coords());
            assert!(is_valid(&Geometry::LineString(s)));
        }
    }

    let rdd = ctx.parallelize(records, 6).spatial();

    // grid aggregation: totals must match the input cardinality
    let cells = rdd.aggregate_by_grid(8, &space);
    let total: u64 = cells.iter().map(|c| c.count).sum();
    assert_eq!(total, 550);

    // the convex hull of all centroids covers every centroid
    let centroids: Vec<stark_geo::Point> =
        rdd.collect().iter().map(|(o, _)| stark_geo::Point(o.centroid())).collect();
    let hull = convex_hull(&Geometry::MultiPoint(centroids.clone())).unwrap();
    let hull_geom = Geometry::Polygon(hull);
    for p in &centroids {
        assert!(hull_geom.intersects(&Geometry::Point(*p)));
    }

    // reverse geocoding of the densest cell lands in Europe
    let busiest = cells.iter().max_by_key(|c| c.count).unwrap();
    let gaz = Gazetteer::new();
    let (place, _) = gaz.reverse_geocode(&busiest.bounds.center()).unwrap();
    assert!(
        ["DE", "FR", "GB", "ES", "IT", "AT", "PL"].contains(&place.country),
        "unexpected nearest place {place:?}"
    );
}
