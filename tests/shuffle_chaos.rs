//! Shuffle chaos: fetch-side faults against the peer-to-peer remote
//! shuffle, with real `stark-worker` processes serving buckets to each
//! other.
//!
//! The invariants pinned here:
//!
//! 1. `ShuffleMode::Remote` is **byte-identical** to
//!    `ShuffleMode::SharedStore` on the S14 workload set (A1 filter and
//!    F4 self-join over grid-routed events), faults or no faults;
//! 2. killing a worker after it produced map outputs yields the
//!    byte-identical final result with `map_outputs_regenerated ==
//!    map_outputs_lost` — every lost output is re-produced via lineage
//!    exactly once, at a bumped epoch;
//! 3. for any injected fault sequence below the retry budget the job
//!    converges byte-identical to the clean run with `fetch_retries`
//!    equal to the injected strike count (each struck transfer costs
//!    exactly one retry, never more).
//!
//! Set `STARK_CHAOS_SEED=<u64>` to replay with a different dataset seed
//! (CI pins one).

use proptest::prelude::*;
use stark::distributed::{to_arg, EventRow, SelfJoinArg, StFilterArg};
use stark::{GridPartitioner, STPredicate, SpatialPartitioner};
use stark_engine::plan::{decode_rows, encode_rows, PlanFragment, PlanInput, PlanOp, PlanSink};
use stark_engine::supervisor::{find_worker_bin, DistTask};
use stark_engine::{
    FetchChaos, FetchPolicy, ShuffleMode, ShuffleSpec, TaskResult, WorkerPool, WorkerPoolConfig,
};
use stark_eventsim::EventGenerator;
use stark_geo::Envelope;
use std::path::PathBuf;
use std::time::Duration;

const DEFAULT_CHAOS_SEED: u64 = 0xC4A05;

fn chaos_seed() -> u64 {
    match std::env::var("STARK_CHAOS_SEED") {
        Ok(s) => s.trim().parse().expect("STARK_CHAOS_SEED must be a u64"),
        Err(_) => DEFAULT_CHAOS_SEED,
    }
}

fn worker_bin() -> PathBuf {
    find_worker_bin("stark-worker")
        .expect("stark-worker binary not built; `cargo test` builds workspace bins first")
}

fn space() -> Envelope {
    Envelope::from_bounds(0.0, 0.0, 1000.0, 1000.0)
}

/// `n` clustered spatio-temporal events, deterministic in `seed`.
fn events(seed: u64, n: usize) -> Vec<EventRow> {
    let mut g = EventGenerator::new(seed);
    g.clustered_points(n, 10, 8.0, &space()).iter().map(|e| e.to_pair()).collect()
}

fn grid_for(data: &[EventRow]) -> GridPartitioner {
    let summary: stark::DataSummary =
        data.iter().map(|(o, _)| (o.envelope(), o.centroid())).collect();
    GridPartitioner::build(4, &summary)
}

fn shuffle_pool(workers: usize, fetch_chaos: Option<FetchChaos>) -> WorkerPool {
    let mut cfg = WorkerPoolConfig::new(worker_bin());
    cfg.workers = workers;
    cfg.fetch_chaos = fetch_chaos;
    cfg.respawn_backoff = Duration::from_millis(10);
    WorkerPool::spawn(cfg).expect("spawn shuffle pool")
}

/// Map tasks shipping `data` in `tasks` inline chunks; the pool supplies
/// the shuffle sinks.
fn map_tasks_for(data: &[EventRow], tasks: usize) -> Vec<DistTask> {
    let chunk = data.len().div_ceil(tasks.max(1)).max(1);
    data.chunks(chunk)
        .map(|rows| {
            DistTask::with_rows(
                PlanFragment {
                    schema: "event".into(),
                    input: PlanInput::Inline,
                    ops: Vec::new(),
                    sink: PlanSink::Collect, // replaced by run_shuffle
                },
                encode_rows(rows).expect("encode chunk"),
            )
        })
        .collect()
}

fn grid_spec(
    grid: &GridPartitioner,
    mode: ShuffleMode,
    prefix: &str,
    ops: Vec<PlanOp>,
    sink: PlanSink,
) -> ShuffleSpec {
    ShuffleSpec {
        mode,
        partitioner: "grid".into(),
        partitioner_arg: to_arg(grid),
        num_partitions: grid.num_partitions(),
        prefix: prefix.into(),
        reduce_ops: ops,
        reduce_sink: sink,
    }
}

fn sorted_ids(results: &[TaskResult]) -> Vec<u64> {
    let mut ids: Vec<u64> = results
        .iter()
        .flat_map(|r| {
            decode_rows::<EventRow>(r.payload.as_deref().expect("collect payload"))
                .expect("decode rows")
        })
        .map(|(_, (id, _))| id)
        .collect();
    ids.sort_unstable();
    ids
}

/// A query box over the densest quarter of the space, timed to cover the
/// generator's whole time range.
fn query() -> stark::STObject {
    stark::STObject::from_wkt_interval(
        "POLYGON((250 250, 750 250, 750 750, 250 750, 250 250))",
        0,
        2_000_000,
    )
    .unwrap()
}

fn st_filter_op() -> PlanOp {
    PlanOp::Filter {
        op: "st_filter".into(),
        arg: to_arg(&StFilterArg { query: query(), predicate: STPredicate::ContainedBy }),
    }
}

fn self_join_sink(radius: f64) -> PlanSink {
    PlanSink::CollectWith {
        op: "self_join_pairs".into(),
        arg: to_arg(&SelfJoinArg { predicate: STPredicate::within_distance(radius) }),
    }
}

fn assert_results_identical(shared: &[TaskResult], remote: &[TaskResult], label: &str) {
    assert_eq!(shared.len(), remote.len(), "{label}: partition count");
    for (p, (s, r)) in shared.iter().zip(remote).enumerate() {
        assert_eq!(s.output, r.output, "{label}: partition {p} output diverged");
        assert_eq!(s.payload, r.payload, "{label}: partition {p} payload diverged");
    }
}

#[test]
fn remote_shuffle_is_byte_identical_to_shared_store_on_s14_workloads() {
    let data = events(chaos_seed(), 2_000);
    let grid = grid_for(&data);
    let maps = map_tasks_for(&data, 8);
    let mut pool = shuffle_pool(4, None);

    // A1: spatio-temporal containment filter per partition.
    let filter_shared = pool
        .run_shuffle(
            &maps,
            &grid_spec(
                &grid,
                ShuffleMode::SharedStore,
                "sc/a1-shared",
                vec![st_filter_op()],
                PlanSink::Collect,
            ),
        )
        .expect("A1 shared");
    let filter_remote = pool
        .run_shuffle(
            &maps,
            &grid_spec(
                &grid,
                ShuffleMode::Remote,
                "sc/a1-remote",
                vec![st_filter_op()],
                PlanSink::Collect,
            ),
        )
        .expect("A1 remote");
    assert_results_identical(&filter_shared, &filter_remote, "A1 filter");

    // F4: within-distance self-join per partition.
    let join_shared = pool
        .run_shuffle(
            &maps,
            &grid_spec(
                &grid,
                ShuffleMode::SharedStore,
                "sc/f4-shared",
                Vec::new(),
                self_join_sink(5.0),
            ),
        )
        .expect("F4 shared");
    let join_remote = pool
        .run_shuffle(
            &maps,
            &grid_spec(&grid, ShuffleMode::Remote, "sc/f4-remote", Vec::new(), self_join_sink(5.0)),
        )
        .expect("F4 remote");
    assert_results_identical(&join_shared, &join_remote, "F4 self-join");

    let stats = pool.stats();
    assert!(stats.shuffle_bytes_fetched_remote > 0, "remote mode must fetch peer-to-peer");
    assert_eq!(stats.fetch_retries, 0);
    assert_eq!(stats.fetch_failures, 0);
    assert_eq!(stats.map_outputs_lost, 0);
    assert_eq!(stats.map_outputs_regenerated, 0);
    pool.shutdown();
}

#[test]
fn killing_a_serving_worker_regenerates_exactly_the_lost_outputs() {
    let data = events(chaos_seed() ^ 0x5A17, 2_000);
    let grid = grid_for(&data);
    let maps = map_tasks_for(&data, 8);

    // Fault-free reference.
    let mut reference: Vec<u64> = data
        .iter()
        .filter(|(o, _)| STPredicate::ContainedBy.eval(o, &query()))
        .map(|(_, (id, _))| *id)
        .collect();
    reference.sort_unstable();
    assert!(!reference.is_empty(), "the query box must select something");

    // The first fetch of a task-0 bucket kills the worker serving it;
    // regenerated outputs land at epoch 1, above the chaos `max_epoch`,
    // so recovery traffic is never struck again.
    let chaos = FetchChaos::once(FetchPolicy::KillServingWorker).with_key_filter("task-00000/");
    let mut pool = shuffle_pool(4, Some(chaos));
    let results = pool
        .run_shuffle(
            &maps,
            &grid_spec(
                &grid,
                ShuffleMode::Remote,
                "sc/kill",
                vec![st_filter_op()],
                PlanSink::Collect,
            ),
        )
        .expect("remote shuffle with kill chaos");

    assert_eq!(sorted_ids(&results), reference, "recovery must be invisible in the results");
    let stats = pool.stats();
    assert!(stats.workers_lost >= 1, "the serving worker must have died");
    assert!(stats.fetch_failures >= 1, "the kill must surface as a fetch failure");
    assert!(stats.map_outputs_lost >= 1, "the dead worker's outputs must be lost");
    assert_eq!(
        stats.map_outputs_regenerated, stats.map_outputs_lost,
        "lineage must regenerate exactly the lost outputs"
    );
    assert!(
        pool.shuffle_epoch("sc/kill").unwrap() >= 1,
        "regeneration must bump the shuffle epoch so stale fetches are rejected"
    );
    pool.shutdown();
}

proptest! {
    // Forking real processes is expensive; a few drawn cases suffice on
    // top of the fixed-seed end-to-end tests above.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// For any fetch fault policy and any strike count below the
    /// client's retry budget, the job converges byte-identical to the
    /// clean run and `fetch_retries` equals the injected strike count.
    #[test]
    fn faults_below_the_retry_budget_cost_exactly_one_retry_each(
        seed in 0u64..1_000_000,
        policy_idx in 0usize..3,
        strikes in 0u64..=3,
    ) {
        let policy = [FetchPolicy::RefuseFetch, FetchPolicy::DropBucket, FetchPolicy::CorruptBucket]
            [policy_idx];
        let data = events(seed, 600);
        let grid = grid_for(&data);
        let maps = map_tasks_for(&data, 6);

        let mut clean_pool = shuffle_pool(3, None);
        let clean = clean_pool
            .run_shuffle(
                &maps,
                &grid_spec(&grid, ShuffleMode::Remote, "sc/prop", vec![st_filter_op()], PlanSink::Collect),
            )
            .expect("clean remote shuffle");
        clean_pool.shutdown();

        // Strikes are counted per serving process; scoping them to the
        // worker serving task-0 buckets pins the total exactly.
        let chaos = FetchChaos::once(policy)
            .with_max_strikes(strikes)
            .with_key_filter("task-00000/");
        let mut pool = shuffle_pool(3, Some(chaos));
        let struck = pool
            .run_shuffle(
                &maps,
                &grid_spec(&grid, ShuffleMode::Remote, "sc/prop", vec![st_filter_op()], PlanSink::Collect),
            )
            .expect("struck remote shuffle");

        for (p, (c, s)) in clean.iter().zip(&struck).enumerate() {
            prop_assert_eq!(&c.output, &s.output, "partition {} output diverged", p);
            prop_assert_eq!(&c.payload, &s.payload, "partition {} payload diverged", p);
        }
        let stats = pool.stats();
        prop_assert_eq!(stats.fetch_retries, strikes, "one retry per strike, never more");
        prop_assert_eq!(stats.fetch_failures, 0, "strikes below the budget never escalate");
        prop_assert_eq!(stats.map_outputs_lost, 0);
        prop_assert_eq!(stats.map_outputs_regenerated, 0);
        prop_assert_eq!(stats.workers_lost, 0);
        pool.shutdown();
    }
}
