//! Deterministic chaos harness: every pipeline the paper exercises must
//! return fault-free results while a seeded [`FaultInjector`] kills,
//! delays or transiently fails tasks underneath it.
//!
//! The property tests draw injector seeds, fault rates, policies *and
//! whether speculative execution races duplicates* from proptest; the
//! end-to-end tests run the A1 pruning pipeline under a fixed 10%
//! transient fault rate, and under a delay-heavy straggler rate with
//! speculation enabled. Set `STARK_CHAOS_SEED=<u64>` to replay the
//! end-to-end tests with a different injector seed (CI pins one, so
//! failures reproduce locally with a single env var).

use proptest::prelude::*;
use stark::{GridPartitioner, JoinConfig, STObject, STPredicate, SpatialRdd, SpatialRddExt};
use stark_engine::{Context, EngineConfig, FaultInjector, FaultPolicy, FaultScope, ObjectStore};
use stark_eventsim::EventGenerator;
use stark_geo::{DistanceFn, Envelope};
use std::sync::Arc;
use std::time::Duration;

const DEFAULT_CHAOS_SEED: u64 = 0xC4A05;

/// Injector seed for the end-to-end test: `STARK_CHAOS_SEED` when set
/// (the CI chaos job pins it), else a fixed default. The bool reports
/// whether the seed was overridden.
fn chaos_seed() -> (u64, bool) {
    match std::env::var("STARK_CHAOS_SEED") {
        Ok(s) => (s.trim().parse().expect("STARK_CHAOS_SEED must be a u64"), true),
        Err(_) => (DEFAULT_CHAOS_SEED, false),
    }
}

fn chaos_ctx(injector: Option<Arc<FaultInjector>>) -> Context {
    chaos_ctx_spec(injector, false)
}

/// Like [`chaos_ctx`], with speculative execution optionally enabled —
/// the retry and result invariants must hold either way. Set
/// `STARK_MEMORY_BUDGET=<bytes>` to cap the context's memory budget
/// (the CI memory-chaos job pins a tight one), so every invariant in
/// this file is additionally exercised under spill-and-evict pressure.
fn chaos_ctx_spec(injector: Option<Arc<FaultInjector>>, speculate: bool) -> Context {
    let memory_budget = std::env::var("STARK_MEMORY_BUDGET")
        .ok()
        .map(|s| s.trim().parse().expect("STARK_MEMORY_BUDGET must be a u64"));
    Context::with_config(EngineConfig {
        parallelism: 4,
        max_task_retries: 3,
        fault_injector: injector,
        speculation: speculate,
        speculation_quantile: 0.5,
        speculation_multiplier: 1.5,
        memory_budget,
        ..Default::default()
    })
}

/// A recoverable injector drawn from proptest inputs. Returns the
/// injector and whether its policy triggers retries (Delay injects
/// latency and MemoryPressure shrinks the effective budget; neither
/// fails the task).
fn drawn_injector(seed: u64, rate: f64, policy_sel: u8) -> (Arc<FaultInjector>, bool) {
    let scope = FaultScope::Probability(rate);
    match policy_sel {
        0 => (Arc::new(FaultInjector::new(seed, scope, FaultPolicy::Transient)), true),
        1 => (
            Arc::new(FaultInjector::new(seed, scope, FaultPolicy::Transient).with_fail_attempts(2)),
            true,
        ),
        2 => (
            // shrink the effective budget to ~16 KiB mid-job: shuffles
            // spill and caches evict, but no task may fail
            Arc::new(FaultInjector::memory_pressure(seed, rate, 16 * 1024)),
            false,
        ),
        _ => (
            Arc::new(FaultInjector::new(
                seed,
                scope,
                FaultPolicy::Delay(Duration::from_micros(50)),
            )),
            false,
        ),
    }
}

/// Retry bookkeeping that holds for every recoverable policy: transient
/// faults retry once per injection, delays never retry, and nothing
/// fails permanently.
fn assert_retry_invariants(ctx: &Context, chaos: &FaultInjector, retries_expected: bool) {
    let m = ctx.metrics();
    assert_eq!(m.tasks_failed_permanently, 0, "recoverable faults must never exhaust retries");
    if retries_expected {
        assert_eq!(
            m.tasks_retried,
            chaos.injected(),
            "every injected transient fault costs exactly one retry"
        );
        assert_eq!(m.partitions_recomputed, m.tasks_retried);
    } else {
        assert_eq!(m.tasks_retried, 0, "delays must not trigger retries");
    }
}

fn space() -> Envelope {
    Envelope::from_bounds(0.0, 0.0, 100.0, 100.0)
}

fn dataset(n: usize, seed: u64) -> Vec<(STObject, (u64, String))> {
    EventGenerator::new(seed)
        .clustered_points(n, 6, 3.0, &space())
        .into_iter()
        .map(|e| e.to_pair())
        .collect()
}

fn grid_partitioned(
    ctx: &Context,
    data: Vec<(STObject, (u64, String))>,
    parts: usize,
    dims: usize,
) -> SpatialRdd<(u64, String)> {
    let srdd = ctx.parallelize(data, parts).spatial();
    let summary = srdd.summarize();
    srdd.partition_by(Arc::new(GridPartitioner::build(dims, &summary)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// collect under injected faults is the identity, same as fault-free.
    #[test]
    fn collect_is_fault_oblivious(
        fault_seed in any::<u64>(),
        rate in 0.02f64..0.5,
        policy_sel in 0u8..4,
        speculate in any::<bool>(),
        data in proptest::collection::vec(any::<i32>(), 1..400),
        parts in 1usize..9,
    ) {
        let (chaos, retries_expected) = drawn_injector(fault_seed, rate, policy_sel);
        let ctx = chaos_ctx_spec(Some(Arc::clone(&chaos)), speculate);
        let got = ctx.parallelize(data.clone(), parts).map(|x| x as i64 * 7 - 3).collect();
        let expect: Vec<i64> = data.iter().map(|&x| x as i64 * 7 - 3).collect();
        prop_assert_eq!(got, expect);
        assert_retry_invariants(&ctx, &chaos, retries_expected);
    }

    /// partition_by (a full shuffle) preserves the multiset under faults.
    #[test]
    fn shuffle_is_fault_oblivious(
        fault_seed in any::<u64>(),
        rate in 0.02f64..0.5,
        policy_sel in 0u8..4,
        speculate in any::<bool>(),
        data in proptest::collection::vec(any::<i32>(), 1..300),
        dst_parts in 1usize..9,
    ) {
        let (chaos, retries_expected) = drawn_injector(fault_seed, rate, policy_sel);
        let ctx = chaos_ctx_spec(Some(Arc::clone(&chaos)), speculate);
        let r = ctx
            .parallelize(data.clone(), 4)
            .partition_by(dst_parts, |x| x.unsigned_abs() as usize);
        let mut got = r.collect();
        let mut expect = data;
        got.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
        assert_retry_invariants(&ctx, &chaos, retries_expected);
    }

    /// A budget far smaller than a cached dataset forces pressure
    /// eviction mid-job while a transient injector retries tasks
    /// underneath: the output must stay identical to the unbounded
    /// fault-free run, every eviction must be accounted, and evicted
    /// partitions must recompute from lineage on later reads.
    #[test]
    fn cache_eviction_under_pressure_is_output_invariant(
        fault_seed in any::<u64>(),
        rate in 0.02f64..0.3,
        data in proptest::collection::vec(any::<i32>(), 64..400),
    ) {
        let expect: Vec<i64> = data.iter().map(|&x| x as i64 * 11 + 5).collect();
        // a third of the cached dataset (8 bytes per mapped element)
        let budget = ((data.len() * 8) as u64 / 3).max(64);
        let chaos = Arc::new(FaultInjector::new(
            fault_seed,
            FaultScope::Probability(rate),
            FaultPolicy::Transient,
        ));
        let ctx = Context::with_config(EngineConfig {
            parallelism: 4,
            max_task_retries: 3,
            fault_injector: Some(Arc::clone(&chaos)),
            memory_budget: Some(budget),
            ..Default::default()
        });
        let cached = ctx.parallelize(data, 8).map(|x| x as i64 * 11 + 5).cache();
        prop_assert_eq!(cached.collect(), expect.clone());
        prop_assert_eq!(cached.collect(), expect, "evicted partitions must recompute identically");
        let m = ctx.metrics();
        prop_assert!(
            m.partitions_evicted_for_pressure > 0,
            "a third of the dataset cannot cache without evictions: {:?}", m
        );
        prop_assert!(m.bytes_reserved_peak <= budget + (400 * 8),
            "pressure may overshoot by at most one partition: {:?}", m);
        assert_retry_invariants(&ctx, &chaos, true);
    }

    /// The partitioned spatial join returns the fault-free pair set.
    #[test]
    fn spatial_join_is_fault_oblivious(
        fault_seed in any::<u64>(),
        rate in 0.02f64..0.4,
        policy_sel in 0u8..4,
        speculate in any::<bool>(),
        data_seed in 0u64..1000,
    ) {
        let pair_ids = |ctx: &Context| {
            let part = grid_partitioned(ctx, dataset(250, data_seed), 5, 4);
            let right = ctx.parallelize(dataset(200, data_seed + 1), 4).spatial();
            let mut ids: Vec<(u64, u64)> = part
                .join(&right, STPredicate::Intersects, JoinConfig::live_index(4))
                .collect()
                .into_iter()
                .map(|((_, (l, _)), (_, (r, _)))| (l, r))
                .collect();
            ids.sort_unstable();
            ids
        };
        let expect = pair_ids(&chaos_ctx(None));
        let (chaos, retries_expected) = drawn_injector(fault_seed, rate, policy_sel);
        let ctx = chaos_ctx_spec(Some(Arc::clone(&chaos)), speculate);
        prop_assert_eq!(pair_ids(&ctx), expect);
        assert_retry_invariants(&ctx, &chaos, retries_expected);
    }

    /// kNN through the partitioned path returns bitwise-equal distances
    /// and the same neighbour ids under faults.
    #[test]
    fn knn_is_fault_oblivious(
        fault_seed in any::<u64>(),
        rate in 0.02f64..0.4,
        policy_sel in 0u8..4,
        speculate in any::<bool>(),
        data_seed in 0u64..1000,
    ) {
        let neighbours = |ctx: &Context| {
            let part = grid_partitioned(ctx, dataset(600, data_seed), 6, 4);
            part.knn(&STObject::point(50.0, 50.0), 15, DistanceFn::Euclidean)
                .into_iter()
                .map(|(d, (_, (id, _)))| (d.to_bits(), id))
                .collect::<Vec<(u64, u64)>>()
        };
        let expect = neighbours(&chaos_ctx(None));
        let (chaos, retries_expected) = drawn_injector(fault_seed, rate, policy_sel);
        let ctx = chaos_ctx_spec(Some(Arc::clone(&chaos)), speculate);
        prop_assert_eq!(neighbours(&ctx), expect);
        assert_retry_invariants(&ctx, &chaos, retries_expected);
    }
}

/// The A1 pruning pipeline (grid(8) partitioning + containedBy filter)
/// serialised to JSON bytes — "byte-identical" is literal here.
fn a1_result_bytes(ctx: &Context, checkpoint: Option<&ObjectStore>) -> Vec<u8> {
    let part = grid_partitioned(ctx, dataset(3000, 77), 8, 8);
    let query =
        STObject::from_wkt_interval("POLYGON((20 20, 70 20, 70 70, 20 70, 20 20))", 0, 1 << 40)
            .unwrap();
    let collected = match checkpoint {
        None => part.filter(&query, STPredicate::ContainedBy).collect(),
        Some(store) => {
            // mid-pipeline checkpoint: persist the shuffled layout, then
            // resume the pipeline from the truncated lineage
            let cp = part.rdd().checkpoint(store, "a1-mid").expect("checkpoint write failed");
            assert!(
                cp.explain().starts_with("Checkpoint["),
                "checkpoint must truncate lineage, got {}",
                cp.explain()
            );
            cp.spatial().filter(&query, STPredicate::ContainedBy).collect()
        }
    };
    serde_json::to_vec(&collected).expect("result must serialise")
}

/// End-to-end: the full A1 pipeline under a seeded 10% task-failure
/// rate returns byte-identical results to a clean run — with and
/// without a mid-pipeline checkpoint.
#[test]
fn a1_pipeline_chaos_run_is_byte_identical() {
    let (seed, overridden) = chaos_seed();
    let clean = a1_result_bytes(&chaos_ctx(None), None);
    assert!(!clean.is_empty());

    // chaos, recovery purely via lineage recomputation
    let chaos = Arc::new(FaultInjector::transient(seed, 0.10));
    let ctx = chaos_ctx(Some(Arc::clone(&chaos)));
    let faulty = a1_result_bytes(&ctx, None);
    assert_eq!(clean, faulty, "chaos run diverged from the clean run (seed {seed})");
    if !overridden {
        assert!(chaos.injected() > 0, "default seed must actually inject faults");
    }
    assert_retry_invariants(&ctx, &chaos, true);

    // chaos again, with a mid-pipeline checkpoint absorbing the lineage
    let dir = std::env::temp_dir().join(format!("stark-chaos-{}", std::process::id()));
    let store = ObjectStore::open(dir.join("store")).expect("object store");
    let chaos_ck = Arc::new(FaultInjector::transient(seed, 0.10));
    let ctx_ck = chaos_ctx(Some(Arc::clone(&chaos_ck)));
    let faulty_ck = a1_result_bytes(&ctx_ck, Some(&store));
    assert_eq!(clean, faulty_ck, "checkpointed chaos run diverged (seed {seed})");
    assert_retry_invariants(&ctx_ck, &chaos_ck, true);
    let _ = std::fs::remove_dir_all(&dir);
}

/// End-to-end straggler run: the A1 pipeline under a delay-heavy fault
/// rate (20% of first attempts stall 40ms) with speculative execution
/// racing duplicates against the stragglers. Speculation must not
/// change a byte of the output, must not masquerade as retries, and —
/// under the default seed — must actually fire and win.
#[test]
fn a1_pipeline_with_speculation_stays_byte_identical() {
    let (seed, _) = chaos_seed();
    let clean = a1_result_bytes(&chaos_ctx(None), None);

    let chaos = Arc::new(FaultInjector::new(
        seed,
        FaultScope::Probability(0.20),
        FaultPolicy::Delay(Duration::from_millis(40)),
    ));
    let ctx = chaos_ctx_spec(Some(Arc::clone(&chaos)), true);
    let speculative = a1_result_bytes(&ctx, None);
    assert_eq!(clean, speculative, "speculative chaos run diverged (seed {seed})");

    let m = ctx.metrics();
    assert_retry_invariants(&ctx, &chaos, false);
    assert_eq!(m.deadline_exceeded_jobs, 0);
    if seed == DEFAULT_CHAOS_SEED {
        assert!(chaos.injected() > 0, "default seed must actually stall tasks");
        assert!(m.tasks_speculated >= 1, "a 40ms stall must look straggly: {m:?}");
        assert!(m.speculative_wins >= 1, "an unstalled duplicate must win: {m:?}");
        assert!(m.tasks_cancelled >= 1, "the losing original must be cancelled: {m:?}");
    }
}
