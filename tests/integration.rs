//! Cross-crate integration tests: engine ↔ core ↔ index ↔ baselines ↔
//! eventsim, exercised through public APIs only.

use stark::cluster::{dbscan, dbscan_local, DbscanParams};
use stark::{
    BspPartitioner, GridPartitioner, IndexedSpatialRdd, JoinConfig, STObject, STPredicate,
    SpatialPartitioner, SpatialRddExt,
};
use stark_baselines::{
    broadcast_join, geospark_join, spatialspark_join, GeoSparkConfig, RegionScheme,
};
use stark_engine::{Context, ObjectStore};
use stark_eventsim::{read_events_csv, write_events_csv, EventGenerator};
use stark_geo::{Coord, DistanceFn, Envelope};
use std::collections::BTreeSet;
use std::sync::Arc;

fn ctx() -> Context {
    Context::with_parallelism(4)
}

fn dataset(n: usize, seed: u64) -> Vec<(STObject, (u64, String))> {
    EventGenerator::new(seed)
        .clustered_points(n, 6, 3.0, &Envelope::from_bounds(0.0, 0.0, 100.0, 100.0))
        .into_iter()
        .map(|e| e.to_pair())
        .collect()
}

/// Every execution strategy must return the same filter result.
#[test]
fn filter_strategies_agree() {
    let ctx = ctx();
    let data = ctx.parallelize(dataset(3000, 1), 7);
    let query =
        STObject::from_wkt_interval("POLYGON((20 20, 60 20, 60 60, 20 60, 20 20))", 0, 1_000_000)
            .unwrap();

    let srdd = data.spatial();
    let baseline: BTreeSet<u64> = srdd
        .filter(&query, STPredicate::ContainedBy)
        .collect()
        .into_iter()
        .map(|(_, (id, _))| id)
        .collect();
    assert!(!baseline.is_empty());

    let summary = srdd.summarize();
    let configs: Vec<(&str, Arc<dyn SpatialPartitioner>)> = vec![
        ("grid", Arc::new(GridPartitioner::build(5, &summary))),
        ("bsp", Arc::new(BspPartitioner::build(200, 2.0, &summary))),
    ];
    for (name, p) in configs {
        let part = srdd.partition_by(p);
        let got: BTreeSet<u64> = part
            .filter(&query, STPredicate::ContainedBy)
            .collect()
            .into_iter()
            .map(|(_, (id, _))| id)
            .collect();
        assert_eq!(got, baseline, "partitioner {name} (plain filter)");

        let idx: BTreeSet<u64> = part
            .live_index(5)
            .contained_by(&query)
            .collect()
            .into_iter()
            .map(|(_, (id, _))| id)
            .collect();
        assert_eq!(idx, baseline, "partitioner {name} (live index)");
    }
}

/// All four join implementations (STARK, STARK+index, GeoSpark-like,
/// SpatialSpark-like) must produce the same pair set.
#[test]
fn join_strategies_agree() {
    let ctx = ctx();
    let left = ctx.parallelize(dataset(700, 2), 5);
    let right = ctx.parallelize(dataset(700, 3), 6);
    let pred = STPredicate::within_distance(1.5);

    type Pair = ((STObject, (u64, String)), (STObject, (u64, String)));
    let pair_ids = |v: Vec<Pair>| {
        let mut ids: Vec<(u64, u64)> =
            v.into_iter().map(|((_, (a, _)), (_, (b, _)))| (a, b)).collect();
        ids.sort_unstable();
        ids
    };

    let lspat = left.spatial();
    let stark_plain =
        pair_ids(lspat.join(&right.spatial(), pred, JoinConfig::nested_loop()).collect());
    assert!(!stark_plain.is_empty());

    let part = lspat.partition_by(Arc::new(GridPartitioner::build(4, &lspat.summarize())));
    let stark_part =
        pair_ids(part.join(&right.spatial(), pred, JoinConfig::live_index(5)).collect());
    assert_eq!(stark_part, stark_plain);

    let scheme = RegionScheme::grid(4, &Envelope::from_bounds(0.0, 0.0, 100.0, 100.0));
    let gs: Vec<(u64, u64)> = stark_baselines::id_pairs(&geospark_join(
        &left,
        &right,
        &scheme,
        pred,
        GeoSparkConfig::default(),
    ))
    .into_iter()
    .collect();
    // geospark ids are dataset indexes == our payload ids by construction
    assert_eq!(gs, stark_plain);

    let ss = pair_ids(spatialspark_join(&left, &right, &scheme, pred, 5).collect());
    assert_eq!(ss, stark_plain);

    let bc = pair_ids(broadcast_join(&left, &right, pred).collect());
    assert_eq!(bc, stark_plain);
}

/// kNN through every execution path returns the same distances.
#[test]
fn knn_paths_agree() {
    let ctx = ctx();
    let data = ctx.parallelize(dataset(2000, 4), 8);
    let q = STObject::point(50.0, 50.0);

    let srdd = data.spatial();
    let plain = srdd.knn(&q, 25, DistanceFn::Euclidean);
    let part = srdd.partition_by(Arc::new(BspPartitioner::build(100, 1.0, &srdd.summarize())));
    let part_knn = part.knn(&q, 25, DistanceFn::Euclidean);
    let idx_knn = part.live_index(6).knn(&q, 25, DistanceFn::Euclidean);

    assert_eq!(plain.len(), 25);
    for (a, b) in plain.iter().zip(&part_knn) {
        assert!((a.0 - b.0).abs() < 1e-9);
    }
    for (a, b) in plain.iter().zip(&idx_knn) {
        assert!((a.0 - b.0).abs() < 1e-9);
    }
}

/// Distributed DBSCAN agrees with the single-threaded oracle through the
/// whole stack (generator → engine → partitioner → clustering).
#[test]
fn dbscan_end_to_end() {
    let ctx = ctx();
    let pairs = dataset(1200, 5);
    let rdd = ctx.parallelize(pairs.clone(), 9).spatial();
    let part = rdd.partition_by(Arc::new(GridPartitioner::build(4, &rdd.summarize())));
    let params = DbscanParams::new(1.2, 6);

    let distributed = dbscan(&part, params).collect();
    assert_eq!(distributed.len(), pairs.len());

    // DBSCAN is deterministic for noise and for the grouping of *core*
    // points; border points may legitimately attach to either adjacent
    // cluster depending on visit order, so the comparison excludes them.
    let (ref_labels, ref_cores) = dbscan_local(&pairs, &params);
    let ref_noise: BTreeSet<u64> = pairs
        .iter()
        .zip(&ref_labels)
        .filter(|(_, l)| l.is_none())
        .map(|((_, (id, _)), _)| *id)
        .collect();
    let dist_noise: BTreeSet<u64> =
        distributed.iter().filter(|(_, _, c)| c.is_none()).map(|(_, (id, _), _)| *id).collect();
    assert_eq!(dist_noise, ref_noise);

    let core_ids: BTreeSet<u64> =
        pairs.iter().zip(&ref_cores).filter(|(_, c)| **c).map(|((_, (id, _)), _)| *id).collect();
    assert!(!core_ids.is_empty());

    // grouping agreement (up to relabelling) over core points
    let ref_map: std::collections::HashMap<u64, usize> =
        pairs.iter().zip(&ref_labels).filter_map(|((_, (id, _)), l)| l.map(|l| (*id, l))).collect();
    let mut pairing: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
    let mut reverse: std::collections::HashMap<usize, u64> = std::collections::HashMap::new();
    for (_, (id, _), label) in &distributed {
        if !core_ids.contains(id) {
            continue;
        }
        let dl = label.expect("core point must be clustered");
        let rl = ref_map[id];
        match pairing.get(&dl) {
            Some(&exp) => assert_eq!(exp, rl, "cluster mismatch for core id {id}"),
            None => {
                assert!(reverse.insert(rl, dl).is_none(), "split cluster {rl}");
                pairing.insert(dl, rl);
            }
        }
    }
    // every labelled border point is labelled in the oracle too
    for (_, (id, _), label) in &distributed {
        assert_eq!(label.is_some(), ref_map.contains_key(id), "membership mismatch for id {id}");
    }
}

/// CSV → engine → partition → persist index → reload in a fresh context
/// (the paper's Figure 2 workflow: store, load, partition, index, query).
#[test]
fn figure2_workflow_roundtrip() {
    let ctx = ctx();
    let dir = std::env::temp_dir().join(format!("stark-it-fig2-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // store raw data to "HDFS"
    let events =
        EventGenerator::new(6).uniform_points(800, &Envelope::from_bounds(0.0, 0.0, 50.0, 50.0));
    let csv = dir.join("events.csv");
    write_events_csv(&csv, &events).unwrap();

    // load, convert, partition, index, persist
    let loaded = read_events_csv(&csv).unwrap();
    assert_eq!(loaded, events);
    let pairs: Vec<(STObject, (u64, String))> = loaded.into_iter().map(|e| e.to_pair()).collect();
    let rdd = ctx.parallelize(pairs, 6).spatial();
    let part = rdd.partition_by(Arc::new(GridPartitioner::build(4, &rdd.summarize())));
    let indexed = part.live_index(5);
    let store = ObjectStore::open(dir.join("store")).unwrap();
    indexed.persist(&store, "events").unwrap();

    // query through the index in the same program
    let q =
        STObject::from_wkt_interval("POLYGON((10 10, 30 10, 30 30, 10 30, 10 10))", 0, 1_000_000)
            .unwrap();
    let here = indexed.contained_by(&q).count();

    // a "second program": fresh context, loaded index
    let ctx2 = Context::with_parallelism(2);
    let reloaded: IndexedSpatialRdd<(u64, String)> =
        IndexedSpatialRdd::load(&ctx2, &store, "events").unwrap();
    assert_eq!(reloaded.contained_by(&q).count(), here);
    assert_eq!(reloaded.count(), 800);

    let _ = std::fs::remove_dir_all(&dir);
}

/// Engine metrics tell the §2.1 pruning story end to end.
#[test]
fn pruning_reduces_work_measurably() {
    let ctx = ctx();
    let data = ctx.parallelize(dataset(5000, 7), 8);
    let srdd = data.spatial();
    let part = srdd.partition_by(Arc::new(GridPartitioner::build(6, &srdd.summarize())));
    part.count();

    // tiny query window: most of the 36 partitions must be pruned
    let q =
        STObject::from_wkt_interval("POLYGON((1 1, 6 1, 6 6, 1 6, 1 1))", 0, 1_000_000).unwrap();
    let before = ctx.metrics();
    part.filter(&q, STPredicate::ContainedBy).count();
    let delta = ctx.metrics().diff(&before);
    assert!(
        delta.partitions_pruned >= 20,
        "expected most partitions pruned, got {}",
        delta.partitions_pruned
    );
}

/// The GeoSpark duplicate bug reproduction: without dedup, replicated
/// objects yield varying (inflated) result counts, as §3 observed.
#[test]
fn geospark_bug_reproduction() {
    let ctx = ctx();
    // rectangles spanning several tiles
    let regions: Vec<(STObject, (u64, String))> = EventGenerator::new(8)
        .rect_regions(120, 30.0, &Envelope::from_bounds(0.0, 0.0, 100.0, 100.0))
        .into_iter()
        .map(|e| e.to_pair())
        .collect();
    let rdd = ctx.parallelize(regions, 4);
    let scheme = RegionScheme::grid(4, &Envelope::from_bounds(0.0, 0.0, 100.0, 100.0));

    let correct =
        geospark_join(&rdd, &rdd, &scheme, STPredicate::Intersects, GeoSparkConfig::default())
            .count();
    let buggy = geospark_join(
        &rdd,
        &rdd,
        &scheme,
        STPredicate::Intersects,
        GeoSparkConfig { dedup: false, ..Default::default() },
    )
    .count();
    assert!(buggy > correct, "buggy={buggy} correct={correct}");

    // and the correct count equals STARK's
    let stark = rdd.spatial().self_join(STPredicate::Intersects, JoinConfig::default()).count();
    assert_eq!(stark, correct);
}

/// Haversine kNN on world data returns plausible geography.
#[test]
fn haversine_knn_world() {
    let ctx = ctx();
    let pairs: Vec<(STObject, (u64, String))> =
        EventGenerator::new(9).world_events(3000).into_iter().map(|e| e.to_pair()).collect();
    let rdd = ctx.parallelize(pairs, 8).spatial();
    let berlin = STObject::point(13.4, 52.5);
    let nn = rdd.knn(&berlin, 10, DistanceFn::Haversine);
    assert_eq!(nn.len(), 10);
    // all ten nearest events are in Europe (the dataset is dense there)
    for (d, (o, _)) in &nn {
        assert!(*d < 3_000_000.0, "nearest event {o} is {d} m away");
        let c = o.centroid();
        assert!(c.x > -25.0 && c.x < 45.0 && c.y > 30.0, "unexpected location {c}");
    }
    // distances ascend
    assert!(nn.windows(2).all(|w| w[0].0 <= w[1].0));
}

/// Balance statistics across partitioners on skewed data, through the
/// real shuffle path.
#[test]
fn bsp_balances_skew_better_than_grid() {
    let ctx = ctx();
    let pairs: Vec<(STObject, (u64, String))> =
        EventGenerator::new(10).world_events(6000).into_iter().map(|e| e.to_pair()).collect();
    let rdd = ctx.parallelize(pairs, 8).spatial();
    let summary = rdd.summarize();

    let bsp = BspPartitioner::build(300, 1.0, &summary);
    let dims = (bsp.num_partitions() as f64).sqrt().ceil() as usize;
    let grid = GridPartitioner::build(dims, &summary);

    let max_of = |p: Arc<dyn SpatialPartitioner>| {
        let counts = rdd.partition_by(p).rdd().count_per_partition();
        counts.into_iter().max().unwrap_or(0)
    };
    let bsp_max = max_of(Arc::new(bsp));
    let grid_max = max_of(Arc::new(grid));
    assert!(bsp_max < grid_max, "bsp max {bsp_max} should be under grid max {grid_max}");
}

/// Voronoi scheme construction + join through the whole baseline stack.
#[test]
fn voronoi_geospark_pipeline() {
    let ctx = ctx();
    let data = ctx.parallelize(dataset(900, 11), 6);
    let sample: Vec<Coord> = data.collect().iter().map(|(o, _)| o.centroid()).collect();
    let scheme = RegionScheme::voronoi(8, &sample, 3);
    let joined =
        geospark_join(&data, &data, &scheme, STPredicate::Intersects, GeoSparkConfig::default());
    let stark = data.spatial().self_join(STPredicate::Intersects, JoinConfig::default());
    assert_eq!(joined.count(), stark.count());
}
